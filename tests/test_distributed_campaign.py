"""Distributed campaign execution: lease-based multi-worker drains.

The contract under test (see the "Distributed campaigns" section of
docs/warehouse.md): N workers drain one campaign concurrently, any of them
may be SIGKILLed at any instruction, and the campaign still completes with
zero lost and zero duplicated results -- the final report is byte-identical
to a serial single-worker run of the same suite.

Four layers of evidence, cheapest first:

* in-process drains under a fake clock (single worker, interleaved workers,
  crash reclaim, lease loss, poison-shard quarantine) -- every lease
  transition deterministic;
* a property-based state machine (seeded stdlib ``random``) driving random
  claim/renew/expire/complete/crash/release interleavings against the real
  SQLite lease table, with model-checked invariants;
* degenerate-manifest regressions (zero-spec percent, unknown-campaign
  joins) and the CLI worker/leases verbs;
* the headline fault-injection harness: real worker subprocesses on one
  warehouse, one SIGKILLed while it holds a lease, survivors reclaim and
  finish.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.config import reduced_row_config
from repro.sim.sweep import ScenarioSpec
from repro.store import (
    Campaign,
    CampaignWorker,
    JsonDirStore,
    LeaseLost,
    SqliteStore,
    campaign_report,
    campaign_status,
    manifest_shard_plan,
)
from repro.store.campaign import CampaignProgress, CampaignStatus

REQUESTS = 200
TRACKERS = ("none", "dapper-h", "graphene")

#: tracker="none" is its own insecure baseline: three unique simulations.
UNIQUE_SIMS = len(TRACKERS)


@pytest.fixture(scope="module")
def sweep_config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture(scope="module")
def specs(sweep_config):
    return [
        ScenarioSpec(
            tracker=tracker,
            workload="453.povray",
            requests_per_core=REQUESTS,
            config=sweep_config,
        )
        for tracker in TRACKERS
    ]


@pytest.fixture(scope="module")
def serial_report(specs, tmp_path_factory):
    """The reference: the same suite drained by one ordinary Campaign."""
    store = SqliteStore(tmp_path_factory.mktemp("serial") / "wh.sqlite")
    Campaign("dist", specs, store).run()
    return campaign_report(store, "dist")


class FakeClock:
    """Injectable wall clock: lease transitions happen when *we* say so."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


#: Report fields that legitimately differ between runs of identical work.
VOLATILE = ("elapsed_seconds", "peak_memory_bytes")


def _stable(report: dict) -> str:
    rows = [
        {key: value for key, value in row.items() if key not in VOLATILE}
        for row in report["rows"]
    ]
    return json.dumps(rows, sort_keys=True)


def _worker(name, specs, store, **kwargs) -> CampaignWorker:
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("sleep", lambda seconds: None)
    return CampaignWorker(name, specs, store, **kwargs)


# --------------------------------------------------------------------------- #
# In-process drains
# --------------------------------------------------------------------------- #


class TestWorkerDrain:
    def test_single_worker_matches_serial_run(
        self, specs, tmp_path, serial_report
    ):
        store = SqliteStore(tmp_path / "wh.sqlite")
        worker = _worker("dist", specs, store, init=True, shard_size=2,
                         worker_id="w0")
        summary = worker.run()
        assert summary.completed == summary.shards == 2   # ceil(3 / 2)
        assert summary.executed == UNIQUE_SIMS
        assert summary.failed == summary.lost == summary.reclaimed == 0
        status = campaign_status(store, "dist")
        assert status.complete and status.percent == 100.0
        assert status.leases["done"] == 2
        assert status.leases["workers"] == {"w0": {"completed": 2, "active": 0}}
        # Byte-identical to the serial reference, volatile fields aside.
        assert _stable(campaign_report(store, "dist")) == _stable(serial_report)

    def test_interleaved_workers_split_disjointly(
        self, specs, tmp_path, serial_report
    ):
        path = tmp_path / "wh.sqlite"
        first = _worker("dist", specs, SqliteStore(path), init=True,
                        shard_size=1, worker_id="a")
        second = _worker("dist", specs, SqliteStore(path), shard_size=99,
                         worker_id="b")
        assert first.join() == UNIQUE_SIMS
        # The stored plan is authoritative: b's shard_size=99 is ignored.
        assert second.join() == UNIQUE_SIMS
        summaries = []
        for worker in (first, second, first, second, first, second):
            summaries.append(worker.run(max_shards=1))
            if campaign_status(worker.store, "dist").complete:
                break
        completed = sum(summary.completed for summary in summaries)
        executed = sum(summary.executed for summary in summaries)
        assert completed == UNIQUE_SIMS and executed == UNIQUE_SIMS
        leases = SqliteStore(path).lease_summary("dist")
        assert leases["done"] == UNIQUE_SIMS
        assert leases["reclaims"] == 0   # nobody died, nothing reclaimed
        by_worker = leases["workers"]
        assert sum(entry["completed"] for entry in by_worker.values()) == 3
        assert _stable(campaign_report(SqliteStore(path), "dist")) == \
            _stable(serial_report)

    def test_finished_campaign_rejoins_as_noop(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        _worker("dist", specs, store, init=True, worker_id="w0").run()
        again = _worker("dist", specs, store, worker_id="w1").run()
        assert again.completed == 0 and again.executed == 0

    def test_worker_refuses_json_store(self, specs, tmp_path):
        with pytest.raises(ValueError, match="lease table"):
            _worker("dist", specs, JsonDirStore(tmp_path / "cache"))

    def test_worker_refuses_mismatched_suite(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        # A campaign saved with a two-spec manifest...
        Campaign("dist", specs[:2], store)._reconcile_manifest(force=False)
        # ...cannot be joined by a worker compiled from three specs.
        with pytest.raises(ValueError, match="does not match"):
            _worker("dist", specs, store).join()

    def test_nonpositive_lease_duration_is_refused(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        with pytest.raises(ValueError, match="lease_duration"):
            _worker("dist", specs, store, lease_duration=0.0)


class TestCrashReclaim:
    def test_dead_workers_shard_is_reclaimed(self, specs, tmp_path):
        path = tmp_path / "wh.sqlite"
        dead = _worker("dist", specs, SqliteStore(path), init=True,
                       shard_size=1, worker_id="dead", lease_duration=30.0)
        dead.join()
        # The "crash": claim a shard and never touch it again (a SIGKILLed
        # process does exactly this -- the lease row simply stops moving).
        lease = dead.store.claim_lease("dist", "dead", now=0.0, duration=30.0)
        assert lease is not None and lease.shard == 0

        survivor = _worker("dist", specs, SqliteStore(path), worker_id="live",
                           lease_duration=30.0, clock=FakeClock(31.0))
        summary = survivor.run()
        assert summary.completed == UNIQUE_SIMS
        assert summary.reclaimed == 1     # shard 0, taken over past deadline
        rows = survivor.store.lease_rows("dist")
        assert rows[0].state == "done" and rows[0].attempts == 2
        assert rows[0].reclaims == 1
        assert campaign_status(survivor.store, "dist").complete

    def test_lost_lease_aborts_the_drain(self, specs, tmp_path):
        path = tmp_path / "wh.sqlite"
        slow = _worker("dist", specs, SqliteStore(path), init=True,
                       shard_size=3, worker_id="slow", lease_duration=10.0,
                       heartbeat_interval=0.0, clock=FakeClock(0.0))
        slow.join()
        lease = slow.store.claim_lease("dist", "slow", now=0.0, duration=10.0)
        # Another worker reclaims the shard after the deadline passed...
        thief = SqliteStore(path)
        stolen = thief.claim_lease("dist", "thief", now=11.0, duration=10.0)
        assert stolen is not None and stolen.reclaimed
        # ...so the original holder's next heartbeat fails mid-drain.
        with pytest.raises(LeaseLost):
            slow._drain(lease)
        assert thief.renew_lease("dist", lease.shard, "thief",
                                 now=12.0, duration=10.0)

    def test_completion_is_idempotent_after_takeover(self, specs, tmp_path):
        # The loser finished the work before noticing the takeover: marking
        # the shard done is still safe (results are content-keyed) and the
        # second complete call is a no-op.
        store = SqliteStore(tmp_path / "wh.sqlite")
        _worker("dist", specs, store, init=True, shard_size=3).join()
        store.claim_lease("dist", "a", now=0.0, duration=5.0)
        store.claim_lease("dist", "b", now=6.0, duration=5.0)
        assert store.complete_lease("dist", 0, "a") is True
        assert store.complete_lease("dist", 0, "b") is False
        assert store.lease_rows("dist")[0].state == "done"


class _PoisonWorker(CampaignWorker):
    """Shard 0 raises on every attempt; everything else drains normally."""

    def _drain(self, lease):
        if lease.shard == 0:
            raise RuntimeError("poison shard")
        return super()._drain(lease)


class TestPoisonShardQuarantine:
    def test_repeated_failure_quarantines_not_wedges(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        worker = _PoisonWorker("dist", specs, store, init=True, shard_size=1,
                               max_attempts=2, worker_id="w0",
                               clock=FakeClock(), sleep=lambda _s: None)
        summary = worker.run()
        # Two failed attempts on shard 0, then quarantine; shards 1-2 drain.
        assert summary.failed == 2
        assert summary.completed == UNIQUE_SIMS - 1
        rows = store.lease_rows("dist")
        assert rows[0].state == "quarantined"
        assert rows[0].attempts == 2
        assert "RuntimeError: poison shard" in rows[0].last_error
        assert all(row.state == "done" for row in rows[1:])
        status = campaign_status(store, "dist")
        assert not status.complete and status.leases["quarantined"] == 1

    def test_interrupt_releases_the_held_shard(self, specs, tmp_path):
        class _Interrupted(CampaignWorker):
            def _drain(self, lease):
                raise KeyboardInterrupt

        store = SqliteStore(tmp_path / "wh.sqlite")
        worker = _Interrupted("dist", specs, store, init=True, shard_size=3,
                              worker_id="w0", clock=FakeClock(),
                              sleep=lambda _s: None)
        with pytest.raises(KeyboardInterrupt):
            worker.run()
        rows = store.lease_rows("dist")
        # Ctrl-C gives the shard straight back: no waiting out the lease.
        assert rows[0].state == "pending" and rows[0].worker is None


# --------------------------------------------------------------------------- #
# Property-based lease state machine
# --------------------------------------------------------------------------- #


class TestLeaseStateMachine:
    """Random interleavings of claim/renew/expire/complete/crash/release
    against the real lease table, checked against a belief model:

    * a shard is never held by two *live* leases (two workers whose claimed
      deadline has not passed both believing they own it);
    * attempt counts are monotone non-decreasing;
    * after draining, every shard ends ``done`` or ``quarantined``.
    """

    SHARDS = 5
    WORKERS = ("w0", "w1", "w2")
    DURATION = 10.0
    MAX_ATTEMPTS = 3

    def _check(self, store, clock, held, attempts_seen):
        rows = store.lease_rows("prop")
        for row in rows:
            assert row.attempts >= attempts_seen[row.shard], (
                f"shard {row.shard}: attempts went backwards "
                f"({attempts_seen[row.shard]} -> {row.attempts})"
            )
            attempts_seen[row.shard] = row.attempts
        for shard in range(self.SHARDS):
            live = [
                worker
                for worker in self.WORKERS
                if held[worker].get(shard, -1.0) >= clock
            ]
            assert len(live) <= 1, (
                f"shard {shard} held by two live leases at t={clock}: {live}"
            )

    def _machine(self, tmp_path, seed: int, events: int = 120) -> None:
        rng = random.Random(seed)
        store = SqliteStore(tmp_path / f"wh-{seed}.sqlite")
        store.init_leases(
            "prop", [[f"key-{index}"] for index in range(self.SHARDS)]
        )
        clock = 0.0
        held: dict[str, dict[int, float]] = {w: {} for w in self.WORKERS}
        attempts_seen = {shard: 0 for shard in range(self.SHARDS)}

        for _ in range(events):
            event = rng.choice(
                ("claim", "claim", "renew", "advance", "complete",
                 "crash", "release")
            )
            worker = rng.choice(self.WORKERS)
            if event == "claim":
                lease = store.claim_lease(
                    "prop", worker, now=clock, duration=self.DURATION,
                    max_attempts=self.MAX_ATTEMPTS,
                )
                if lease is not None:
                    held[worker][lease.shard] = lease.deadline
            elif event == "advance":
                clock += rng.uniform(0.0, 1.5 * self.DURATION)
            elif held[worker]:
                shard = rng.choice(sorted(held[worker]))
                if event == "renew":
                    renewed = store.renew_lease(
                        "prop", shard, worker, now=clock,
                        duration=self.DURATION,
                    )
                    if renewed:
                        held[worker][shard] = clock + self.DURATION
                    else:
                        held[worker].pop(shard)   # takeover discovered
                elif event == "complete":
                    store.complete_lease("prop", shard, worker)
                    held[worker].pop(shard)
                elif event == "release":
                    store.release_lease(
                        "prop", shard, worker, error="released",
                        quarantine_after=self.MAX_ATTEMPTS,
                    )
                    held[worker].pop(shard)
                elif event == "crash":
                    held[worker] = {}   # SIGKILL: beliefs die, rows persist
            self._check(store, clock, held, attempts_seen)

        # Drain to termination: a finisher that always waits out leases.
        for _ in range(4 * self.SHARDS * self.MAX_ATTEMPTS):
            clock += self.DURATION + 1.0
            lease = store.claim_lease(
                "prop", "finisher", now=clock, duration=self.DURATION,
                max_attempts=self.MAX_ATTEMPTS,
            )
            if lease is None:
                summary = store.lease_summary("prop")
                if not summary["pending"] and not summary["leased"]:
                    break
                continue
            store.complete_lease("prop", lease.shard, "finisher")
        summary = store.lease_summary("prop")
        assert summary["done"] + summary["quarantined"] == self.SHARDS, (
            f"seed {seed}: non-terminal shards remain: {summary}"
        )
        for row in store.lease_rows("prop"):
            assert row.state in ("done", "quarantined")
            assert row.attempts >= 1

    @pytest.mark.parametrize("seed", [7, 19, 23, 42, 1984])
    def test_random_interleavings_preserve_invariants(self, tmp_path, seed):
        self._machine(tmp_path, seed)


# --------------------------------------------------------------------------- #
# Degenerate manifests and error paths
# --------------------------------------------------------------------------- #


class TestDegenerateManifests:
    def test_progress_percent_on_zero_spec_manifest(self):
        tick = CampaignProgress(
            name="empty", batch=0, batches=0, simulations_done=0,
            simulations_total=0, executed=0, elapsed_seconds=0.0,
            eta_seconds=None,
        )
        assert tick.percent == 100.0   # not a ZeroDivisionError

    def test_status_percent_on_zero_spec_manifest(self):
        status = CampaignStatus(
            name="empty", created_at=None, code_version=None,
            current_code_version="x", entries=0, entries_complete=0,
            simulations_total=0, simulations_stored=0, source="",
        )
        assert status.percent == 100.0 and status.complete
        assert status.leases is None   # never joined by a worker

    def test_join_unknown_campaign_is_a_clear_error(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        with pytest.raises(ValueError) as excinfo:
            _worker("ghost", specs, store).join()
        message = str(excinfo.value)
        assert "unknown campaign 'ghost'" in message
        assert "--init" in message   # tells the user how to proceed

    def test_init_with_zero_specs_is_refused(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        with pytest.raises(ValueError, match="no scenarios"):
            _worker("empty", [], store, init=True).join()

    def test_shard_plan_dedups_preserving_manifest_order(self):
        manifest = {
            "entries": [
                {"key": "m0", "baseline_key": "base"},
                {"key": "m1", "baseline_key": "base"},
                {"key": "base", "baseline_key": "base"},
            ]
        }
        assert manifest_shard_plan(manifest, 2) == [["m0", "base"], ["m1"]]
        assert manifest_shard_plan({"entries": []}, 4) == []

    def test_lease_summary_without_workers_is_none(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        assert store.lease_summary("never-joined") is None

    def test_delete_campaign_drops_its_lease_rows(self, specs, tmp_path):
        # Orphaned lease rows would make a later same-named campaign adopt
        # a stale shard plan.
        store = SqliteStore(tmp_path / "wh.sqlite")
        worker = _worker("dist", specs, store, init=True)
        worker.join()
        assert store.lease_rows("dist")
        assert store.delete_campaign("dist")
        assert store.lease_rows("dist") == []
        assert store.lease_summary("dist") is None


# --------------------------------------------------------------------------- #
# CLI verbs
# --------------------------------------------------------------------------- #


CLI_SUITE = {
    "suite": "cli-dist",
    "scenarios": [
        {
            "family": "cross-product",
            "params": {
                "trackers": ["none", "dapper-h"],
                "attacks": ["none"],
                "workloads": ["453.povray"],
                "requests_per_core": REQUESTS,
                "geometry": "reduced",
            },
        }
    ],
}


class TestWorkerCli:
    @pytest.fixture()
    def suite_path(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(CLI_SUITE), encoding="utf-8")
        return path

    def test_worker_leases_status_round_trip(
        self, tmp_path, suite_path, capsys
    ):
        from repro.cli import main

        store_arg = ["--store", str(tmp_path / "wh.sqlite")]
        assert main([
            "campaign", "worker", str(suite_path), *store_arg,
            "--init", "--shard-size", "1", "--worker-id", "cli-w0",
        ]) == 0
        out = capsys.readouterr().out
        assert "2/2 shard(s) completed here" in out
        assert "0 reclaimed, 0 lost, 0 failed" in out

        assert main(["campaign", "leases", "cli-dist", *store_arg]) == 0
        leases_out = capsys.readouterr().out
        assert "done" in leases_out and "cli-w0" in leases_out
        assert "2/2 shard(s) done" in leases_out

        assert main(["campaign", "status", "cli-dist", *store_arg]) == 0
        status_out = capsys.readouterr().out
        # The pre-existing greppable lines survive the lease additions...
        assert "state         : complete" in status_out
        # ...and the distributed accounting rides below them.
        assert "shards        : 2/2 done" in status_out
        assert "cli-w0: 2 shard(s) completed" in status_out

    def test_worker_without_init_on_unknown_campaign_exits_2(
        self, tmp_path, suite_path, capsys
    ):
        from repro.cli import main

        code = main([
            "campaign", "worker", str(suite_path),
            "--store", str(tmp_path / "wh.sqlite"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown campaign" in err and "Traceback" not in err

    def test_leases_on_unknown_campaign_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "campaign", "leases", "nope",
            "--store", str(tmp_path / "wh.sqlite"),
        ])
        assert code == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_leases_on_json_store_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "campaign", "leases", "any", "--store", str(tmp_path / "cache"),
        ])
        assert code == 2
        assert "no lease table" in capsys.readouterr().err

    def test_leases_before_any_worker_joined(
        self, tmp_path, suite_path, capsys
    ):
        from repro.cli import main

        store_arg = ["--store", str(tmp_path / "wh.sqlite")]
        assert main([
            "campaign", "run", str(suite_path), *store_arg,
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "leases", "cli-dist", *store_arg]) == 0
        assert "no lease rows" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Fault injection: real workers, real SIGKILL
# --------------------------------------------------------------------------- #


DIST_SUITE = {
    "suite": "chaos",
    "scenarios": [
        {
            "family": "cross-product",
            "params": {
                "trackers": list(TRACKERS),
                "attacks": ["none"],
                "workloads": ["453.povray", "429.mcf"],
                "requests_per_core": REQUESTS,
                "geometry": "reduced",
            },
        }
    ],
}


class TestFaultInjection:
    """3 real worker subprocesses, one SIGKILLed while holding a lease."""

    LEASE_DURATION = "2"

    def _spawn(self, suite, db, worker_id, extra=()):
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (str(src), env.get("PYTHONPATH")) if part
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "worker",
                str(suite), "--store", str(db), "--init",
                "--worker-id", worker_id, "--shard-size", "2",
                "--lease-duration", self.LEASE_DURATION, *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _wait_for_lease(self, db, holder, timeout=60.0):
        """Poll until ``holder`` has a live leased shard; returns it."""
        deadline = time.monotonic() + timeout
        store = None
        while time.monotonic() < deadline:
            if store is None and db.exists():
                store = SqliteStore(db)
            if store is not None:
                for row in store.lease_rows("chaos"):
                    if row.state == "leased" and row.worker == holder:
                        store.close()
                        return row
            time.sleep(0.005)
        raise AssertionError(f"worker {holder!r} never claimed a lease")

    def test_sigkill_mid_shard_loses_nothing(self, tmp_path, specs):
        suite = tmp_path / "suite.json"
        suite.write_text(json.dumps(DIST_SUITE), encoding="utf-8")
        db = tmp_path / "wh.sqlite"

        # The victim starts alone, so it is guaranteed to be the one holding
        # a lease when the axe falls.
        victim = self._spawn(suite, db, "victim")
        try:
            self._wait_for_lease(db, "victim")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:       # pragma: no cover - cleanup
                victim.kill()
        assert victim.returncode == -signal.SIGKILL

        # The orphaned lease: SIGKILL leaves the victim's shard leased to a
        # dead process (kill latency is microseconds against ~100ms shards,
        # so the victim cannot have slipped to an idle instant).
        store = SqliteStore(db)
        orphans = [
            row for row in store.lease_rows("chaos")
            if row.state == "leased" and row.worker == "victim"
        ]
        assert orphans, "victim died without holding a lease"
        held = orphans[0]
        store.close()

        survivors = [
            self._spawn(suite, db, f"survivor-{index}") for index in range(3)
        ]
        outputs = []
        for proc in survivors:
            out, err = proc.communicate(timeout=300)
            outputs.append((proc.returncode, out, err))
        assert all(code == 0 for code, _out, _err in outputs), outputs

        store = SqliteStore(db)
        status = campaign_status(store, "chaos")
        assert status.complete and status.percent == 100.0

        # The victim's shard went back to the pool and was finished by a
        # survivor (not quarantined: one crash burns one attempt).
        leases = store.lease_summary("chaos")
        assert leases["quarantined"] == 0
        assert leases["reclaims"] >= 1
        victim_shard = next(
            row for row in store.lease_rows("chaos")
            if row.shard == held.shard
        )
        assert victim_shard.state == "done"
        assert victim_shard.worker.startswith("survivor-")
        assert victim_shard.reclaims >= 1

        # Zero lost: every unique simulation is stored.  Zero duplicated:
        # the runs table is keyed by scenario hash, so equality of the two
        # key sets is exact.
        from repro.store.campaign import _manifest_keys, load_manifest

        keys = _manifest_keys(load_manifest(store, "chaos"))
        assert store.keys() & keys == keys
        assert all("0 failed" in out for _code, out, _err in outputs)

        # Byte-identical to a serial single-worker run of the same suite.
        from repro.scenarios import load_suite

        serial_store = SqliteStore(tmp_path / "serial.sqlite")
        Campaign("chaos", load_suite(suite).compile(), serial_store).run()
        assert _stable(campaign_report(store, "chaos")) == \
            _stable(campaign_report(serial_store, "chaos"))


class TestSigtermRelease:
    """SIGTERM is a polite shutdown: the worker releases its lease *now*.

    Unlike the SIGKILL case above (where the shard sits leased to a dead
    process until the deadline passes), a SIGTERM'd worker exits through the
    KeyboardInterrupt path -- same exit code as Ctrl-C, lease released
    immediately.  The lease duration here is a deliberately long 60s so the
    distinction is observable: a successor drains the released shard right
    away, with zero reclaims, which could not happen inside the test timeout
    if the shard were merely waiting out an orphaned lease.
    """

    def _spawn(self, suite, db, worker_id):
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (str(src), env.get("PYTHONPATH")) if part
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "worker",
                str(suite), "--store", str(db), "--init",
                "--worker-id", worker_id, "--shard-size", "2",
                "--lease-duration", "60",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigterm_releases_lease_promptly(self, tmp_path):
        suite = tmp_path / "suite.json"
        suite.write_text(json.dumps(DIST_SUITE), encoding="utf-8")
        db = tmp_path / "wh.sqlite"

        victim = self._spawn(suite, db, "victim")
        try:
            # Reuse the fault-injection poll: live leased shard held by victim.
            TestFaultInjection._wait_for_lease(
                TestFaultInjection(), db, "victim"
            )
            victim.send_signal(signal.SIGTERM)
            out, err = victim.communicate(timeout=60)
        finally:
            if victim.poll() is None:       # pragma: no cover - cleanup
                victim.kill()
                victim.communicate(timeout=30)
        # Same exit code as Ctrl-C: the signal became a KeyboardInterrupt.
        assert victim.returncode == 130, (victim.returncode, out, err)
        assert "interrupted" in err

        # The held shard went straight back to the pool -- no worker, no
        # waiting out the 60s deadline.  (The SIGTERM may also have landed
        # between shards; either way nothing may be left leased.)
        store = SqliteStore(db)
        rows = store.lease_rows("chaos")
        assert rows, "victim exited before initialising the lease table"
        assert all(row.state in ("pending", "done") for row in rows)
        assert all(
            row.worker is None for row in rows if row.state == "pending"
        )
        store.close()

        # A successor claims the released shards as ordinary pending work:
        # completing inside the timeout with zero reclaims is only possible
        # because the victim released rather than orphaned its lease.
        successor = self._spawn(suite, db, "successor")
        out, err = successor.communicate(timeout=300)
        assert successor.returncode == 0, (successor.returncode, out, err)
        assert "0 reclaimed" in out
        store = SqliteStore(db)
        status = campaign_status(store, "chaos")
        assert status.complete and status.percent == 100.0
        store.close()
