"""Tests for the generic tracking structures (CMS, Misra-Gries, Bloom, cache)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prng import XorShift64
from repro.trackers.structures import (
    CountMinSketch,
    CountingBloomFilter,
    MisraGriesSummary,
    SetAssociativeCounterCache,
)


class TestCountMinSketch:
    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(depth=4, width=64, seed=1)
        true_counts = {}
        for key in range(200):
            for _ in range(key % 7 + 1):
                sketch.increment(key)
                true_counts[key] = true_counts.get(key, 0) + 1
        for key, count in true_counts.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(depth=4, width=4096, seed=1)
        sketch.increment(42, amount=10)
        assert sketch.estimate(42) == 10

    def test_reset(self):
        sketch = CountMinSketch(depth=2, width=16, seed=1)
        sketch.increment(1)
        sketch.reset()
        assert sketch.estimate(1) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(depth=0, width=16, seed=1)

    @settings(max_examples=50, deadline=None)
    @given(keys=st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_overestimation_property(self, keys):
        sketch = CountMinSketch(depth=4, width=128, seed=3)
        counts = {}
        for key in keys:
            sketch.increment(key)
            counts[key] = counts.get(key, 0) + 1
        for key, count in counts.items():
            assert sketch.estimate(key) >= count


class TestMisraGries:
    def test_tracks_heavy_hitter_exactly_when_space(self):
        summary = MisraGriesSummary(capacity=8, num_banks=4)
        for _ in range(10):
            summary.observe(5, bank_index=0)
        entry = summary.get(5)
        assert entry is not None
        # First observation from the bank only sets the bit.
        assert entry.count == 10 - 1 + 1  # insert counts as 1, then 9 hits... see below

    def test_bank_bit_suppresses_first_activation(self):
        summary = MisraGriesSummary(capacity=4, num_banks=4)
        summary.observe(1, bank_index=0)          # insert (count 1)
        entry, counted = summary.observe(1, bank_index=1)
        assert counted is False                    # new bank: only sets the bit
        entry, counted = summary.observe(1, bank_index=1)
        assert counted is True                     # same bank again: counts

    def test_spillover_grows_with_distinct_keys(self):
        summary = MisraGriesSummary(capacity=16, num_banks=2)
        for key in range(200):
            summary.observe(key, bank_index=key % 2)
        assert summary.spillover > 0

    def test_replacement_uses_spillover_floor(self):
        summary = MisraGriesSummary(capacity=2, num_banks=1)
        summary.observe(1, 0)
        summary.observe(2, 0)
        summary.observe(3, 0)       # unplaced -> spillover = 1
        assert summary.spillover == 1
        summary.observe(4, 0)       # replaces an entry with count <= spillover
        assert 4 in summary

    def test_reset_entry(self):
        summary = MisraGriesSummary(capacity=4, num_banks=1)
        for _ in range(5):
            summary.observe(9, 0)
        summary.reset_entry(9)
        assert summary.get(9).count == summary.spillover

    def test_reset_clears_everything(self):
        summary = MisraGriesSummary(capacity=4, num_banks=1)
        for key in range(10):
            summary.observe(key, 0)
        summary.reset()
        assert len(summary) == 0
        assert summary.spillover == 0

    def test_count_never_underestimates_per_key_activity(self):
        """An entry present in the summary reports at least ... the spillover floor."""
        summary = MisraGriesSummary(capacity=8, num_banks=1)
        for key in range(100):
            summary.observe(key % 12, 0)
        for key in range(12):
            entry = summary.get(key)
            if entry is not None:
                assert entry.count >= summary.spillover


class TestMisraGriesMultiBankSemantics:
    def test_pinned_multi_bank_sequence(self):
        """Pin the exact RAC/SAV evolution of a traced multi-bank sequence.

        ``count`` is the per-row maximum over sibling banks, ``bank_bits``
        the set of banks currently at that maximum.  An activation from a
        bank whose bit is already set advances the maximum and collapses the
        vector to that bank alone; a bank with a clear bit only catches up.
        """
        summary = MisraGriesSummary(capacity=2, num_banks=4)
        sequence = [
            (7, 0), (7, 1), (7, 0), (7, 0), (7, 2),
            (7, 1), (9, 3), (11, 0), (13, 1), (7, 1),
        ]
        expected = [
            (1, 0b0001, True, 0),    # insert from bank 0
            (1, 0b0011, False, 0),   # bank 1 catches up: bit only
            (2, 0b0001, True, 0),    # bank 0 advances; SAV collapses
            (3, 0b0001, True, 0),
            (3, 0b0101, False, 0),   # bank 2 catches up
            (3, 0b0111, False, 0),   # bank 1 catches up
            (1, 0b1000, True, 0),    # second entry inserted
            (None, None, False, 1),  # table full, no victim: spillover
            (2, 0b0010, True, 1),    # evicts the floor entry (row 9)
            (4, 0b0010, True, 1),    # bank 1 was at the max: advances
        ]
        for (row, bank), (count, bits, counted, spill) in zip(sequence, expected):
            entry, was_counted = summary.observe(row, bank)
            assert was_counted is counted, (row, bank)
            assert summary.spillover == spill, (row, bank)
            if count is None:
                assert entry is None, (row, bank)
            else:
                assert entry.count == count, (row, bank)
                assert entry.bank_bits == bits, (row, bank)


class TestNumpyPurePythonParity:
    """The numpy-backed structures must match the pure-Python reference."""

    def _keys(self, n=400):
        rng = XorShift64(0xC0FFEE)
        return [rng.next_below(10_000) for _ in range(n)]

    def test_count_min_sketch_backends_agree(self):
        keys = self._keys()
        np_cms = CountMinSketch(depth=4, width=64, seed=7)
        py_cms = CountMinSketch(depth=4, width=64, seed=7, use_numpy=False)
        for key in keys:
            assert np_cms.increment(key) == py_cms.increment(key)
        probes = sorted(set(keys))[:50]
        for key in probes:
            assert np_cms.estimate(key) == py_cms.estimate(key)

    def test_count_min_sketch_batch_matches_scalar(self):
        keys = self._keys()
        batch_cms = CountMinSketch(depth=4, width=64, seed=7)
        scalar_cms = CountMinSketch(depth=4, width=64, seed=7, use_numpy=False)
        batch_cms.increment_batch(keys)
        for key in keys:
            scalar_cms.increment(key)
        probes = sorted(set(keys))[:50]
        assert [int(v) for v in batch_cms.estimate_batch(probes)] == [
            scalar_cms.estimate(key) for key in probes
        ]

    def test_counting_bloom_filter_backends_agree(self):
        keys = self._keys()
        np_cbf = CountingBloomFilter(num_counters=128, num_hashes=3, seed=11)
        py_cbf = CountingBloomFilter(
            num_counters=128, num_hashes=3, seed=11, use_numpy=False
        )
        for key in keys:
            assert np_cbf.increment(key) == py_cbf.increment(key)
        np_cbf2 = CountingBloomFilter(num_counters=128, num_hashes=3, seed=11)
        np_cbf2.increment_batch(keys)
        probes = sorted(set(keys))[:50]
        assert [int(v) for v in np_cbf2.estimate_batch(probes)] == [
            py_cbf.estimate(key) for key in probes
        ]


class TestCountingBloomFilter:
    def test_estimate_never_underestimates(self):
        cbf = CountingBloomFilter(num_counters=128, num_hashes=3, seed=1)
        for _ in range(25):
            cbf.increment(7)
        assert cbf.estimate(7) >= 25

    def test_unrelated_key_estimate_small(self):
        cbf = CountingBloomFilter(num_counters=4096, num_hashes=4, seed=1)
        for _ in range(50):
            cbf.increment(1)
        assert cbf.estimate(999_999) <= 50

    def test_reset(self):
        cbf = CountingBloomFilter(num_counters=64, num_hashes=2, seed=1)
        cbf.increment(3)
        cbf.reset()
        assert cbf.estimate(3) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(num_counters=0, num_hashes=1, seed=1)


class TestSetAssociativeCounterCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCounterCache(num_entries=64, ways=4, seed=1)
        cache.fill(10, 5)
        assert cache.lookup(10) == 5
        assert cache.hits == 1

    def test_miss_returns_none(self):
        cache = SetAssociativeCounterCache(num_entries=64, ways=4, seed=1)
        assert cache.lookup(10) is None
        assert cache.misses == 1

    def test_eviction_reports_victim(self):
        cache = SetAssociativeCounterCache(num_entries=16, ways=2, seed=1)
        sets = cache.num_sets
        keys = [0, sets, 2 * sets]      # all map to set 0 (2 ways)
        cache.fill(keys[0], 1)
        cache.fill(keys[1], 2)
        evicted = cache.fill(keys[2], 3)
        assert evicted is not None
        assert evicted[0] in (keys[0], keys[1])
        assert cache.evictions == 1

    def test_set_conflict_attack_pattern_misses(self):
        """Rows congruent modulo the set count overwhelm a single set."""
        cache = SetAssociativeCounterCache(num_entries=4096, ways=32, seed=1, eviction="random")
        sets = cache.num_sets
        colliding = [7 + i * sets for i in range(64)]
        for _ in range(4):
            for key in colliding:
                if cache.lookup(key) is None:
                    cache.fill(key, 0)
        # With 64 rows on a 32-way set, a large fraction of accesses must miss.
        assert cache.misses > cache.hits

    def test_lru_eviction_order(self):
        cache = SetAssociativeCounterCache(num_entries=4, ways=2, seed=1, eviction="lru")
        sets = cache.num_sets
        a, b, c = 0, sets, 2 * sets
        cache.fill(a, 1)
        cache.fill(b, 2)
        cache.lookup(a)                 # a is now most recently used
        evicted = cache.fill(c, 3)
        assert evicted[0] == b

    def test_update_requires_residency(self):
        cache = SetAssociativeCounterCache(num_entries=8, ways=2, seed=1)
        with pytest.raises(KeyError):
            cache.update(5, 1)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SetAssociativeCounterCache(num_entries=10, ways=4, seed=1)
        with pytest.raises(ValueError):
            SetAssociativeCounterCache(num_entries=8, ways=4, seed=1, eviction="fifo")

    def test_reset(self):
        cache = SetAssociativeCounterCache(num_entries=8, ways=2, seed=1)
        cache.fill(1, 1)
        cache.reset()
        assert cache.occupancy == 0
