"""Campaign orchestrator: resumability, interrupt-safety, determinism of the
resumed results, manifest reconciliation, status/report/diff."""

from __future__ import annotations

import pytest

from repro.config import reduced_row_config
from repro.sim.sweep import ScenarioSpec
from repro.store import (
    Campaign,
    JsonDirStore,
    SqliteStore,
    campaign_report,
    campaign_status,
    diff_campaigns,
)
from repro.store.campaign import build_manifest, validate_campaign_name

REQUESTS = 200
TRACKERS = ("none", "dapper-h", "graphene")
WORKLOADS = ("453.povray", "429.mcf")


@pytest.fixture(scope="module")
def sweep_config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture(scope="module")
def specs(sweep_config):
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            requests_per_core=REQUESTS,
            config=sweep_config,
        )
        for tracker in TRACKERS
        for workload in WORKLOADS
    ]


#: The six specs share one insecure baseline per workload, and that baseline
#: *is* the tracker="none" scenario itself: six unique simulations in total.
UNIQUE_SIMS = len(TRACKERS) * len(WORKLOADS)


@pytest.fixture(scope="module")
def finished_store(specs, tmp_path_factory):
    """One fully-executed campaign, shared by the read-only tests."""
    store = SqliteStore(tmp_path_factory.mktemp("campaign") / "wh.sqlite")
    Campaign("full", specs, store, batch_size=4).run()
    return store


class TestRunAndResume:
    def test_first_run_executes_everything(self, specs, finished_store):
        # finished_store ran the campaign; inspect its summary via a re-run.
        summary = Campaign("full", specs, finished_store).run()
        assert summary.entries == len(specs)
        assert summary.simulations_total == UNIQUE_SIMS
        assert summary.already_stored == UNIQUE_SIMS
        assert summary.executed == 0
        assert summary.resumed

    def test_progress_ticks_and_eta(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        ticks = []
        Campaign("ticks", specs, store, batch_size=2).run(progress=ticks.append)
        assert [tick.batch for tick in ticks] == [1, 2, 3]
        assert ticks[-1].simulations_done == UNIQUE_SIMS
        assert ticks[-1].percent == 100.0
        assert all(tick.eta_seconds is not None for tick in ticks)
        assert ticks[0].executed == 2

    def test_interrupt_then_resume_executes_only_missing(
        self, specs, tmp_path, finished_store
    ):
        store = SqliteStore(tmp_path / "wh.sqlite")

        def _interrupt_after_first_batch(progress):
            if progress.batch == 1:
                raise KeyboardInterrupt

        campaign = Campaign("resume", specs, store, batch_size=2)
        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=_interrupt_after_first_batch)
        manifest_keys = {
            key
            for entry in campaign.manifest["entries"]
            for key in (entry["key"], entry["baseline_key"])
        }
        stored = len(store.keys() & manifest_keys)
        assert 0 < stored < UNIQUE_SIMS   # checkpointed, but incomplete
        status = campaign_status(store, "resume")
        assert not status.complete
        assert status.simulations_stored == stored

        resumed = Campaign("resume", specs, store, batch_size=2).run()
        assert resumed.resumed
        assert resumed.already_stored == stored
        assert resumed.executed == UNIQUE_SIMS - stored   # zero re-execution
        assert campaign_status(store, "resume").complete

        third = Campaign("resume", specs, store, batch_size=2).run()
        assert third.executed == 0

        # Determinism: the interrupted-and-resumed campaign reports exactly
        # the numbers of the campaign that ran start to finish.
        resumed_rows = campaign_report(store, "resume")["rows"]
        full_rows = campaign_report(finished_store, "full")["rows"]
        assert [row["normalized_performance"] for row in resumed_rows] == [
            row["normalized_performance"] for row in full_rows
        ]

    def test_json_dir_backend_supports_campaigns(self, specs, tmp_path):
        store = JsonDirStore(tmp_path / "cache")
        subset = specs[:2]   # none + dapper-h on one workload
        summary = Campaign("json-campaign", subset, store, batch_size=8).run()
        assert summary.executed == 2
        assert campaign_status(store, "json-campaign").complete
        # The manifest must not pollute the run-record key space.
        assert not any(key.startswith("json-campaign") for key in store.keys())
        resumed = Campaign("json-campaign", subset, store).run()
        assert resumed.executed == 0


class TestManifestReconciliation:
    def test_changed_scenario_set_requires_force(self, specs, finished_store):
        with pytest.raises(ValueError, match="different scenario set"):
            Campaign("full", specs[:2], finished_store).run()

    def test_force_replaces_manifest(self, specs, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        Campaign("evolving", specs[:2], store).run()
        summary = Campaign("evolving", specs[:4], store).run(force=True)
        assert not summary.resumed           # a fresh manifest was written
        assert summary.entries == 4
        # Results stored by the first manifest still count: only the two new
        # unique simulations execute.
        assert summary.executed == summary.simulations_total - summary.already_stored
        assert campaign_status(store, "evolving").entries == 4

    def test_unknown_campaign_is_reported(self, finished_store):
        with pytest.raises(ValueError, match="unknown campaign"):
            campaign_status(finished_store, "nope")

    def test_invalid_names_rejected(self):
        for name in ("", "../escape", "a b", ".hidden", "x" * 101):
            with pytest.raises(ValueError, match="invalid campaign name"):
                validate_campaign_name(name)
        assert validate_campaign_name("nrh-sweep_v2.1") == "nrh-sweep_v2.1"

    def test_empty_campaign_rejected(self, finished_store):
        with pytest.raises(ValueError, match="no scenarios"):
            build_manifest("empty", [])


class TestStatusReportDiff:
    def test_status_of_finished_campaign(self, specs, finished_store):
        status = campaign_status(finished_store, "full")
        assert status.entries == len(specs)
        assert status.entries_complete == len(specs)
        assert status.complete
        assert status.percent == 100.0

    def test_report_rows_cover_every_entry(self, specs, finished_store):
        report = campaign_report(finished_store, "full")
        assert len(report["rows"]) == len(specs)
        assert report["incomplete_entries"] == 0
        by_tracker = {
            (row["tracker"], row["workload"]): row for row in report["rows"]
        }
        for workload in WORKLOADS:
            assert by_tracker[("none", workload)]["normalized_performance"] == 1.0
        for row in report["rows"]:
            assert row["elapsed_seconds"] is not None
            assert row["dram_activations"] > 0

    def test_self_diff_is_all_zero(self, finished_store):
        diff = diff_campaigns(finished_store, "full")
        assert diff["matched"] == UNIQUE_SIMS
        assert diff["only_in_a"] == [] and diff["only_in_b"] == []
        assert diff["max_abs_normalized_delta"] == 0.0

    def test_diff_two_campaigns_same_store(self, specs, finished_store):
        # A second campaign over the same specs costs zero simulations (every
        # key is already stored) and diffs clean against the first.
        Campaign("full-copy", specs, finished_store).run()
        diff = diff_campaigns(finished_store, "full", finished_store, "full-copy")
        assert diff["matched"] == UNIQUE_SIMS
        assert diff["max_abs_normalized_delta"] == 0.0

    def test_diff_reports_missing_scenarios(self, specs, finished_store):
        Campaign("subset", specs[:2], finished_store).run()
        diff = diff_campaigns(finished_store, "full", finished_store, "subset")
        assert diff["matched"] == 2
        assert len(diff["only_in_a"]) == UNIQUE_SIMS - 2
        assert diff["only_in_b"] == []
