"""Integration tests: full simulations through the public experiment API.

These use the reduced-row configuration and small request budgets so the whole
file runs in tens of seconds while still exercising every layer (workload
generation, LLC, controller, tracker, DRAM timing, metrics, security audit).
"""

import pytest

from repro.config import reduced_row_config
from repro.sim.experiment import ExperimentRunner, run_workload
from repro.trackers.registry import available_trackers, create_tracker


REQUESTS = 1_500
WARMUP = 4_000


@pytest.fixture(scope="module")
def config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture(scope="module")
def runner(config):
    return ExperimentRunner(
        config,
        requests_per_core=REQUESTS,
        attack_warmup_activations=WARMUP,
    )


class TestRegistry:
    def test_all_trackers_listed(self):
        names = available_trackers()
        assert "dapper-s" in names and "dapper-h" in names
        # The paper's eight baselines + the unprotected baseline + the two
        # DAPPER variants + the Graphene / MINT related-work baselines.
        assert len(names) == 13

    def test_create_unknown_rejected(self, config):
        with pytest.raises(ValueError):
            create_tracker("not-a-tracker", config)

    def test_every_tracker_instantiates(self, config):
        for name in available_trackers():
            tracker = create_tracker(name, config)
            assert tracker.storage_report() is not None


class TestBasicSimulation:
    def test_baseline_run_produces_sane_results(self, config):
        result = run_workload(
            config=config,
            tracker="none",
            workload="470.lbm",
            requests_per_core=REQUESTS,
            llc_warmup_accesses=2_000,
        )
        assert result.elapsed_ns > 0
        assert len(result.core_results) == 4
        for core in result.core_results:
            assert 0.0 < core.ipc < 16.0
            assert core.requests == REQUESTS
        assert result.dram_stats.reads > 0
        assert result.energy.total_nj > 0

    def test_simulation_is_deterministic(self, config):
        a = run_workload(
            config=config, tracker="dapper-h", workload="429.mcf",
            requests_per_core=800, llc_warmup_accesses=1_000,
        )
        b = run_workload(
            config=config, tracker="dapper-h", workload="429.mcf",
            requests_per_core=800, llc_warmup_accesses=1_000,
        )
        assert [c.ipc for c in a.core_results] == [c.ipc for c in b.core_results]

    def test_attack_scenario_marks_attacker_core(self, config):
        result = run_workload(
            config=config,
            tracker="none",
            workload="470.lbm",
            attack="refresh",
            requests_per_core=REQUESTS,
            llc_warmup_accesses=2_000,
        )
        attackers = [c for c in result.core_results if c.is_attacker]
        assert len(attackers) == 1
        assert attackers[0].core_id == 0
        assert len(result.benign_results()) == 3

    def test_memory_intensity_orders_ipc(self, config):
        heavy = run_workload(
            config=config, tracker="none", workload="429.mcf",
            requests_per_core=REQUESTS, llc_warmup_accesses=2_000,
        )
        light = run_workload(
            config=config, tracker="none", workload="453.povray",
            requests_per_core=REQUESTS, llc_warmup_accesses=2_000,
        )
        assert light.core_results[1].ipc > heavy.core_results[1].ipc


class TestExperimentRunner:
    def test_baseline_is_cached(self, runner):
        first = runner.baseline("470.lbm")
        second = runner.baseline("470.lbm")
        assert first is second

    def test_normalized_close_to_one_for_no_mitigation(self, runner):
        run = runner.run("none", "470.lbm")
        assert run.normalized == pytest.approx(1.0, abs=0.02)

    def test_dapper_h_benign_overhead_is_small(self, runner):
        run = runner.run("dapper-h", "470.lbm")
        assert run.normalized > 0.97

    def test_attack_matched_baseline_differs_from_clean(self, runner):
        clean = runner.run("dapper-s", "470.lbm", attack="refresh")
        matched = runner.run(
            "dapper-s", "470.lbm", attack="refresh", attack_matched_baseline=True
        )
        assert matched.normalized >= clean.normalized

    def test_average_normalized(self, runner):
        value = runner.average_normalized("none", ["470.lbm", "429.mcf"])
        assert value == pytest.approx(1.0, abs=0.02)


class TestPerformanceAttackShape:
    """The headline qualitative result: Perf-Attacks devastate the shared-state
    trackers while DAPPER-H shrugs them off.

    These runs need the tracker warmed all the way into the attack's exploited
    regime, so they use a runner with a generous warm-up cap.
    """

    @pytest.fixture(scope="class")
    def attack_runner(self, config):
        return ExperimentRunner(
            config,
            requests_per_core=2_000,
            attack_warmup_activations=150_000,
        )

    @pytest.fixture(scope="class")
    def full_geometry_runner(self):
        # DAPPER's group statistics (aliasing between hot rows and row groups)
        # only look like the paper's at the full 2M-rows-per-rank geometry.
        from repro.config import baseline_config

        return ExperimentRunner(
            baseline_config(nrh=500).with_refresh_window_scale(1 / 32),
            requests_per_core=2_000,
            attack_warmup_activations=40_000,
        )

    def test_hydra_suffers_under_rcc_conflicts(self, attack_runner):
        run = attack_runner.run("hydra", "470.lbm", attack="rcc-conflict")
        assert run.normalized < 0.75
        assert run.result.dram_stats.counter_reads > 0

    def test_comet_suffers_under_rat_thrashing(self, attack_runner):
        run = attack_runner.run("comet", "470.lbm", attack="rat-thrash")
        assert run.normalized < 0.75
        assert (
            run.result.tracker_stats.structure_resets
            + run.result.tracker_stats.mitigations_issued
            > 0
        )

    def test_dapper_h_resists_the_refresh_attack(self, full_geometry_runner):
        run = full_geometry_runner.run(
            "dapper-h", "470.lbm", attack="refresh", attack_matched_baseline=True
        )
        assert run.normalized > 0.9

    def test_dapper_h_beats_dapper_s_under_refresh_attack(self, full_geometry_runner):
        dapper_s = full_geometry_runner.run(
            "dapper-s", "470.lbm", attack="refresh", attack_matched_baseline=True
        )
        dapper_h = full_geometry_runner.run(
            "dapper-h", "470.lbm", attack="refresh", attack_matched_baseline=True
        )
        assert dapper_h.normalized >= dapper_s.normalized


class TestSecurityAudit:
    def test_no_mitigation_is_insecure_under_hammering(self, config):
        result = run_workload(
            config=config,
            tracker="none",
            workload="453.povray",
            attack="rowhammer",
            requests_per_core=1_200,
            enable_auditor=True,
            llc_warmup_accesses=500,
        )
        assert result.security is not None
        assert not result.security.is_secure

    def test_dapper_h_prevents_rowhammer(self, config):
        result = run_workload(
            config=config,
            tracker="dapper-h",
            workload="453.povray",
            attack="rowhammer",
            requests_per_core=1_200,
            enable_auditor=True,
            llc_warmup_accesses=500,
        )
        assert result.security.is_secure
        assert result.security.max_count <= config.rowhammer.nrh

    def test_dapper_s_prevents_rowhammer(self, config):
        result = run_workload(
            config=config,
            tracker="dapper-s",
            workload="453.povray",
            attack="rowhammer",
            requests_per_core=1_200,
            enable_auditor=True,
            llc_warmup_accesses=500,
        )
        assert result.security.is_secure

    def test_benign_run_is_secure_even_without_mitigation(self, config):
        result = run_workload(
            config=config,
            tracker="none",
            workload="403.gcc",
            requests_per_core=1_000,
            enable_auditor=True,
            llc_warmup_accesses=500,
        )
        assert result.security.is_secure
