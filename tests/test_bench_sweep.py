"""Tests for the sweep benchmark tool's guard rails (not its timings)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from bench_sweep import check_baseline, main, reference_specs  # noqa: E402

from repro.store import SqliteStore
from repro.store.backend import RunRecord, utc_now


class TestReferenceSuite:
    def test_covers_trackers_attacks_workloads(self):
        specs = reference_specs(100)
        assert len(specs) == 12
        assert {spec.tracker for spec in specs} == {"none", "graphene", "dapper-h"}
        assert {spec.attack for spec in specs} == {None, "refresh"}
        assert all(spec.requests_per_core == 100 for spec in specs)


class TestWarmStoreRefusal:
    def _prewarm(self, path):
        store = SqliteStore(path)
        store.put(
            RunRecord(
                key="k1",
                scenario={},
                result={},
                code_version="x",
                created_at=utc_now(),
                elapsed_seconds=0.0,
            )
        )

    def test_refuses_non_empty_store(self, tmp_path, capsys):
        store_path = tmp_path / "wh.sqlite"
        self._prewarm(store_path)
        exit_code = main(["--store", str(store_path), "-o", str(tmp_path / "o.json")])
        assert exit_code == 2
        assert "already holds" in capsys.readouterr().err

    def test_empty_existing_store_is_fine_to_open(self, tmp_path):
        # An existing but empty store must not trip the refusal; only the
        # refusal check itself is under test, so stop before simulating by
        # checking that len() of a fresh store is what the guard reads.
        store_path = tmp_path / "wh.sqlite"
        assert len(SqliteStore(store_path)) == 0


class TestBaselineGate:
    def test_regression_beyond_tolerance_fails(self):
        report = {"speedup_batched_vs_scalar": 2.0}
        baseline = {"speedup_batched_vs_scalar": 4.0}
        error = check_baseline(report, baseline, max_regression=0.25)
        assert error is not None
        assert "regression" in error

    def test_regression_within_tolerance_passes(self):
        report = {"speedup_batched_vs_scalar": 3.2}
        baseline = {"speedup_batched_vs_scalar": 4.0}
        assert check_baseline(report, baseline, max_regression=0.25) is None

    def test_improvement_passes(self):
        report = {"speedup_batched_vs_scalar": 5.0}
        baseline = {"speedup_batched_vs_scalar": 4.0}
        assert check_baseline(report, baseline, max_regression=0.25) is None

    def test_old_schema_baseline_is_skipped(self):
        report = {"speedup_batched_vs_scalar": 3.0}
        assert check_baseline(report, {}, max_regression=0.25) is None
        assert check_baseline({}, {"speedup_batched_vs_scalar": 4.0}, 0.25) is None

    def test_committed_report_gates_itself(self):
        import json

        committed = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
        report = json.loads(committed.read_text())
        assert report["engine_parity"] is True
        assert report["modes"]["warm"]["cache_hit_rate"] == 1.0
        assert check_baseline(report, report, max_regression=0.25) is None
