"""Tests for the extended CLI commands (figures, tables, sweeps, traces)."""

import pytest

from repro.cli import FIGURE_IDS, TABLE_IDS, main
from repro.cpu.tracefile import read_trace


class TestFigureAndTableListing:
    def test_figure_list_shows_every_regenerable_figure(self, capsys):
        assert main(["figure", "--list"]) == 0
        output = capsys.readouterr().out
        for number in FIGURE_IDS:
            assert f"figure {number:>2}:" in output

    def test_figure_without_number_defaults_to_listing(self, capsys):
        assert main(["figure"]) == 0
        assert "figure  1:" in capsys.readouterr().out

    def test_unknown_figure_number_is_rejected(self, capsys):
        assert main(["figure", "7"]) == 2
        assert "available" in capsys.readouterr().out

    def test_table_list_shows_every_regenerable_table(self, capsys):
        assert main(["table", "--list"]) == 0
        output = capsys.readouterr().out
        for number in TABLE_IDS:
            assert f"table {number}:" in output

    def test_unknown_table_number_is_rejected(self, capsys):
        assert main(["table", "9"]) == 2
        assert "available" in capsys.readouterr().out

    def test_table_1_prints_the_system_configuration(self, capsys):
        assert main(["table", "1"]) == 0
        output = capsys.readouterr().out
        assert "DDR5" in output or "parameter" in output

    def test_table_2_prints_the_mapping_capture_analysis(self, capsys):
        assert main(["table", "2"]) == 0
        output = capsys.readouterr().out
        assert "reset" in output.lower()

    def test_table_3_prints_the_storage_comparison(self, capsys):
        assert main(["table", "3"]) == 0
        assert "dapper-h" in capsys.readouterr().out


class TestListAttacks:
    def test_every_attack_kernel_is_listed(self, capsys):
        assert main(["list-attacks"]) == 0
        output = capsys.readouterr().out
        for name in ("rcc-conflict", "refresh", "blind-random-rows", "rowhammer"):
            assert name in output


class TestSecuritySweep:
    def test_sweep_of_secure_trackers_exits_cleanly(self, capsys):
        code = main(
            [
                "security-sweep",
                "--trackers", "dapper-h,graphene",
                "--attacks", "rowhammer",
                "--activations", "4000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dapper-h" in output
        assert "graphene" in output
        assert "NO" not in output

    def test_sweep_reports_an_insecure_tracker_with_nonzero_exit(self, capsys):
        code = main(
            [
                "security-sweep",
                "--trackers", "dapper-h",
                "--attacks", "rowhammer",
                "--activations", "4000",
                "--nrh", "500",
            ]
        )
        assert code == 0
        # The unprotected baseline, in contrast, must be reported vulnerable.
        code = main(
            [
                "security-sweep",
                "--trackers", "none",
                "--attacks", "rowhammer",
                "--activations", "6000",
            ]
        )
        # "none" is excluded from the failing-exit criterion (it is the
        # deliberately unprotected baseline), so the command still exits 0...
        assert code == 0
        # ...but the table must flag it as insecure.
        assert "NO" in capsys.readouterr().out


class TestTraceRecord:
    def test_records_a_replayable_trace(self, tmp_path, capsys):
        output = tmp_path / "mcf.trace"
        code = main(
            [
                "trace-record",
                "--workload", "429.mcf",
                "--entries", "200",
                "-o", str(output),
            ]
        )
        assert code == 0
        assert "wrote 200 entries" in capsys.readouterr().out
        assert len(read_trace(output)) == 200

    def test_unknown_workload_is_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "trace-record",
                    "--workload", "not-a-workload",
                    "--entries", "10",
                    "-o", str(tmp_path / "x.trace"),
                ]
            )
