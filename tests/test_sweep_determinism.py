"""Determinism and regression tests for the sweep engine.

The same :class:`ScenarioSpec` batch must produce bit-identical normalized
performance whether it is executed serially, fanned out over a process pool,
or replayed from a warm on-disk cache -- otherwise cached and distributed
sweeps could silently disagree with the figures in the paper reproduction.
"""

from __future__ import annotations

import json

import pytest

from repro.config import reduced_row_config
from repro.cpu.workloads import get_workload
from repro.sim.simulator import SimulationResult
from repro.sim.sweep import ScenarioSpec, SweepRunner

REQUESTS = 500


@pytest.fixture(scope="module")
def sweep_config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture(scope="module")
def specs(sweep_config):
    """A small batch covering benign, mitigated and attacked scenarios."""
    return [
        ScenarioSpec(
            tracker="none",
            workload="470.lbm",
            requests_per_core=REQUESTS,
            config=sweep_config,
        ),
        ScenarioSpec(
            tracker="dapper-h",
            workload="470.lbm",
            requests_per_core=REQUESTS,
            config=sweep_config,
        ),
        ScenarioSpec(
            tracker="comet",
            workload="470.lbm",
            attack="rat-thrash",
            requests_per_core=REQUESTS,
            attack_warmup_activations=20_000,
            config=sweep_config,
        ),
    ]


@pytest.fixture(scope="module")
def warm_cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("sweep-cache")


@pytest.fixture(scope="module")
def serial_outcomes(specs, warm_cache_dir):
    """Reference run: serial execution, populating the on-disk cache."""
    return SweepRunner(cache_dir=warm_cache_dir, jobs=1).run(specs)


def _fingerprint(outcomes):
    """Everything determinism guarantees: normals and per-core IPCs."""
    return [
        (
            outcome.normalized,
            tuple(core.ipc for core in outcome.result.core_results),
            tuple(core.ipc for core in outcome.baseline.core_results),
        )
        for outcome in outcomes
    ]


class TestExecutionPathDeterminism:
    def test_serial_run_is_simulated_not_cached(self, serial_outcomes):
        assert all(not outcome.from_cache for outcome in serial_outcomes)

    def test_process_pool_matches_serial(self, specs, serial_outcomes):
        pool_outcomes = SweepRunner(jobs=4).run(specs)
        assert _fingerprint(pool_outcomes) == _fingerprint(serial_outcomes)

    def test_warm_cache_replay_matches_serial(
        self, specs, serial_outcomes, warm_cache_dir
    ):
        replayed = SweepRunner(cache_dir=warm_cache_dir, jobs=1).run(specs)
        assert all(outcome.from_cache for outcome in replayed)
        assert _fingerprint(replayed) == _fingerprint(serial_outcomes)

    def test_benign_scenario_normalizes_to_exactly_one(self, serial_outcomes):
        # The "none" benign scenario *is* its own baseline: the sweep planner
        # must collapse the two into one simulation, making the ratio exact.
        assert serial_outcomes[0].normalized == 1.0

    def test_attack_scenario_actually_degrades(self, serial_outcomes):
        assert serial_outcomes[2].normalized < 0.95


class TestScenarioHash:
    def test_key_is_stable_across_equivalent_specs(self, sweep_config):
        by_name = ScenarioSpec(
            tracker="dapper-h", workload="470.lbm", config=sweep_config
        )
        by_profile = ScenarioSpec(
            tracker="dapper-h", workload=get_workload("470.lbm"), config=sweep_config
        )
        assert by_name.cache_key() == by_profile.cache_key()

    def test_benign_specs_ignore_unused_warmup_cap(self, sweep_config):
        base = ScenarioSpec(tracker="none", workload="470.lbm", config=sweep_config)
        capped = ScenarioSpec(
            tracker="none",
            workload="470.lbm",
            attack_warmup_activations=99_999,
            config=sweep_config,
        )
        assert base.cache_key() == capped.cache_key()

    def test_normalization_flag_does_not_change_measured_key(self, sweep_config):
        plain = ScenarioSpec(
            tracker="dapper-h",
            workload="470.lbm",
            attack="refresh",
            config=sweep_config,
        )
        matched = ScenarioSpec(
            tracker="dapper-h",
            workload="470.lbm",
            attack="refresh",
            attack_matched_baseline=True,
            config=sweep_config,
        )
        assert plain.cache_key() == matched.cache_key()
        assert (
            plain.baseline_spec().cache_key() != matched.baseline_spec().cache_key()
        )


class TestResultSerialization:
    def test_round_trip_through_json_is_lossless(self, serial_outcomes):
        for outcome in serial_outcomes:
            result = outcome.result
            replayed = SimulationResult.from_dict(
                json.loads(json.dumps(result.to_dict()))
            )
            assert replayed == result

    def test_round_trip_preserves_security_report(self, sweep_config):
        spec = ScenarioSpec(
            tracker="none",
            workload="453.povray",
            attack="rowhammer",
            requests_per_core=400,
            enable_auditor=True,
            config=sweep_config,
        )
        result = SweepRunner().simulate(spec)
        replayed = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert replayed.security is not None
        assert replayed.security.is_secure == result.security.is_secure
        assert replayed.security.violations == result.security.violations
        assert replayed == result
