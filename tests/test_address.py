"""Tests for physical-address <-> DRAM-coordinate mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DRAMOrganization
from repro.dram.address import AddressMapper, BankAddress, RowAddress


@pytest.fixture
def org():
    return DRAMOrganization()


@pytest.fixture
def mapper(org):
    return AddressMapper(org)


class TestEncodeDecode:
    def test_roundtrip_simple(self, mapper):
        address = mapper.encode(channel=1, rank=0, bank_group=3, bank=2, row=1234, column=5)
        decoded = mapper.decode(address)
        assert decoded.channel == 1
        assert decoded.rank == 0
        assert decoded.bank_group == 3
        assert decoded.bank == 2
        assert decoded.row == 1234
        assert decoded.column == 5

    def test_address_bits_cover_total_capacity(self, mapper, org):
        assert 2 ** mapper.address_bits == org.total_bytes

    def test_out_of_range_row_rejected(self, mapper, org):
        with pytest.raises(ValueError):
            mapper.encode(0, 0, 0, 0, row=org.rows_per_bank)

    def test_out_of_range_channel_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.encode(channel=2, rank=0, bank_group=0, bank=0, row=0)

    def test_consecutive_lines_spread_across_channels(self, mapper, org):
        line = org.line_size_bytes
        first = mapper.decode(0)
        second = mapper.decode(line)
        assert first.channel != second.channel

    def test_encode_row_helper(self, mapper):
        row_addr = RowAddress(BankAddress(0, 1, 2, 3), 777)
        address = mapper.encode_row(row_addr, column=9)
        decoded = mapper.decode(address)
        assert decoded.row_address == row_addr
        assert decoded.column == 9

    @settings(max_examples=200, deadline=None)
    @given(
        channel=st.integers(0, 1),
        rank=st.integers(0, 1),
        bank_group=st.integers(0, 7),
        bank=st.integers(0, 3),
        row=st.integers(0, 64 * 1024 - 1),
        column=st.integers(0, 127),
    )
    def test_roundtrip_property(self, channel, rank, bank_group, bank, row, column):
        mapper = AddressMapper(DRAMOrganization())
        address = mapper.encode(channel, rank, bank_group, bank, row, column)
        decoded = mapper.decode(address)
        assert (
            decoded.channel,
            decoded.rank,
            decoded.bank_group,
            decoded.bank,
            decoded.row,
            decoded.column,
        ) == (channel, rank, bank_group, bank, row, column)


class TestBankAddress:
    def test_flat_index_unique(self, org):
        seen = set()
        for channel in range(org.channels):
            for rank in range(org.ranks_per_channel):
                for group in range(org.bank_groups_per_rank):
                    for bank in range(org.banks_per_group):
                        seen.add(BankAddress(channel, rank, group, bank).flat(org))
        assert len(seen) == org.total_banks
        assert min(seen) == 0
        assert max(seen) == org.total_banks - 1

    def test_rank_local_bank(self, org):
        bank = BankAddress(0, 0, 3, 2)
        assert bank.rank_local_bank(org) == 3 * org.banks_per_group + 2


class TestRowAddress:
    def test_rank_row_index_roundtrip(self, mapper, org):
        row_addr = RowAddress(BankAddress(1, 1, 5, 3), 4321)
        index = row_addr.rank_row_index(org)
        recovered = mapper.rank_row_to_row_address(1, 1, index)
        assert recovered == row_addr

    def test_rank_row_index_bounds(self, org):
        last = RowAddress(
            BankAddress(0, 0, org.bank_groups_per_rank - 1, org.banks_per_group - 1),
            org.rows_per_bank - 1,
        )
        assert last.rank_row_index(org) == org.rows_per_rank - 1

    def test_rank_row_out_of_range(self, mapper, org):
        with pytest.raises(ValueError):
            mapper.rank_row_to_row_address(0, 0, org.rows_per_rank)
