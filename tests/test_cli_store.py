"""CLI coverage for the warehouse verbs (``campaign ...`` / ``store ...``)
plus the ``--cache-dir foo.sqlite`` path of the existing subcommands, and
figure/table parity between the SQLite warehouse and the legacy JSON cache."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sim.sweep import CODE_VERSION, SweepRunner
from repro.store import JsonDirStore, RunRecord, SqliteStore

SUITE = {
    "suite": "cli-campaign",
    "description": "tiny campaign for CLI tests",
    "scenarios": [
        {
            "family": "cross-product",
            "params": {
                "trackers": ["none", "dapper-h"],
                "attacks": ["none"],
                "workloads": ["453.povray"],
                "requests_per_core": 200,
                "geometry": "reduced",
            },
        }
    ],
}


@pytest.fixture()
def suite_path(tmp_path):
    path = tmp_path / "suite.json"
    path.write_text(json.dumps(SUITE), encoding="utf-8")
    return path


def _campaign(tmp_path, suite_path, *extra: str) -> int:
    return main(
        [
            "campaign",
            "run",
            str(suite_path),
            "--store",
            str(tmp_path / "wh.sqlite"),
            *extra,
        ]
    )


class TestCampaignVerbs:
    def test_run_resume_status_report_diff(
        self, tmp_path, suite_path, capsys, caplog
    ):
        import logging

        # Batch progress/ETA is logged (stderr), not printed: the summary on
        # stdout stays machine-greppable while -q can silence the chatter.
        with caplog.at_level(logging.INFO, logger="repro.campaign"):
            assert _campaign(tmp_path, suite_path, "--batch-size", "1") == 0
        first = capsys.readouterr().out
        assert "2 executed" in first
        assert any("batch" in record.message for record in caplog.records)

        # Re-running resumes with zero executions ("..., 0 executed)" is the
        # anchored form: a bare "0 executed" would also match "10 executed").
        assert _campaign(tmp_path, suite_path) == 0
        assert "(2 already stored, 0 executed)" in capsys.readouterr().out

        store_arg = ["--store", str(tmp_path / "wh.sqlite")]
        assert main(["campaign", "status", "cli-campaign", *store_arg]) == 0
        status_out = capsys.readouterr().out
        assert "2/2 complete" in status_out and "complete" in status_out

        assert main(["campaign", "list", *store_arg]) == 0
        assert "cli-campaign" in capsys.readouterr().out

        assert main(["campaign", "report", "cli-campaign", *store_arg]) == 0
        assert "normalized_performance" in capsys.readouterr().out

        report_csv = tmp_path / "report.csv"
        assert main(
            ["campaign", "report", "cli-campaign", *store_arg,
             "-o", str(report_csv)]
        ) == 0
        capsys.readouterr()
        header, *rows = report_csv.read_text(encoding="utf-8").splitlines()
        assert "normalized_performance" in header
        assert len(rows) == 2

        assert main(
            ["campaign", "diff", "cli-campaign", "cli-campaign", *store_arg]
        ) == 0
        assert "matched 2 scenario(s)" in capsys.readouterr().out

    def test_status_report_leases_json_documents(
        self, tmp_path, suite_path, capsys
    ):
        assert _campaign(tmp_path, suite_path) == 0
        capsys.readouterr()
        store_arg = ["--store", str(tmp_path / "wh.sqlite")]

        assert main(
            ["campaign", "status", "cli-campaign", *store_arg, "--json"]
        ) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["name"] == "cli-campaign"
        assert status["state"] == "complete" and status["percent"] == 100.0

        assert main(
            ["campaign", "report", "cli-campaign", *store_arg, "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_rows"] == 2 and report["returned"] == 2
        assert report["next_offset"] is None
        assert report["rows"][0]["normalized_performance"] is not None

        # No distributed worker joined: an empty-but-valid lease document.
        assert main(
            ["campaign", "leases", "cli-campaign", *store_arg, "--json"]
        ) == 0
        leases = json.loads(capsys.readouterr().out)
        assert leases == {"shards": [], "summary": None}

    def test_unknown_campaign_and_bad_suite_exit_2(self, tmp_path, capsys):
        store_arg = ["--store", str(tmp_path / "wh.sqlite")]
        assert main(["campaign", "status", "nope", *store_arg]) == 2
        assert "unknown campaign" in capsys.readouterr().err
        bad_suite = tmp_path / "bad.json"
        bad_suite.write_text('{"scenarios": [{"family": "nope"}]}')
        assert main(["campaign", "run", str(bad_suite), *store_arg]) == 2
        assert "unknown scenario family" in capsys.readouterr().err


class TestStoreVerbs:
    def _seed_record(self, key="k1", code_version=CODE_VERSION) -> RunRecord:
        return RunRecord(
            key=key,
            code_version=code_version,
            scenario={
                "tracker": "dapper-h",
                "workload": "453.povray",
                "attack": None,
                "seed": 7,
                "nrh": 500,
            },
            result={
                "core_results": [{"ipc": 2.0, "is_attacker": False}],
                "dram_stats": {"activations": 123},
                "tracker_stats": {"mitigations_issued": 1},
            },
            elapsed_seconds=0.5,
        )

    def test_query_group_by_export_gc(self, tmp_path, capsys):
        store_path = tmp_path / "wh.sqlite"
        store = SqliteStore(store_path)
        store.put(self._seed_record("a"))
        store.put(self._seed_record("b", code_version="older"))
        store.close()
        store_arg = ["--store", str(store_path)]

        assert main(["store", "query", *store_arg, "--tracker", "dapper-h"]) == 0
        assert "dapper-h" in capsys.readouterr().out

        assert main(["store", "query", *store_arg, "--group-by", "tracker"]) == 0
        out = capsys.readouterr().out
        assert "runs" in out and "mean_benign_ipc_mean" in out

        exported = tmp_path / "runs.csv"
        assert main(["store", "export", *store_arg, "-o", str(exported)]) == 0
        capsys.readouterr()
        assert "dapper-h" in exported.read_text(encoding="utf-8")

        assert main(["store", "gc", *store_arg, "--dry-run"]) == 0
        assert "would delete 1" in capsys.readouterr().out
        assert main(["store", "gc", *store_arg]) == 0
        assert "deleted 1" in capsys.readouterr().out
        assert SqliteStore(store_path).keys() == {"a"}

    def test_query_offset_pages_through_rows(self, tmp_path, capsys):
        store_path = tmp_path / "wh.sqlite"
        store = SqliteStore(store_path)
        for key in ("row-a", "row-b", "row-c"):
            store.put(self._seed_record(key))
        store.close()
        store_arg = ["--store", str(store_path)]

        assert main(
            ["store", "query", *store_arg, "--limit", "1", "--offset", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "row-b" in out
        assert "row-a" not in out and "row-c" not in out

        # Offset past the data is an empty table, not an error.
        assert main(["store", "query", *store_arg, "--offset", "9"]) == 0
        assert "row-" not in capsys.readouterr().out

    def test_import_json_dir_into_warehouse(self, tmp_path, capsys):
        cache = JsonDirStore(tmp_path / "cache")
        cache.put(self._seed_record("imported"))
        store_path = tmp_path / "wh.sqlite"
        args = [
            "store", "import", str(tmp_path / "cache"),
            "--store", str(store_path),
        ]
        assert main(args) == 0
        assert "imported 1 record(s)" in capsys.readouterr().out
        assert main(args) == 0   # idempotent
        assert "(1 already present)" in capsys.readouterr().out
        assert SqliteStore(store_path).get("imported") is not None

    def test_import_nonexistent_source_exits_2(self, tmp_path, capsys):
        # A typo'd .sqlite source must not be silently created as an empty
        # warehouse at the wrong path.
        missing = tmp_path / "warehose.sqlite"
        code = main(
            ["store", "import", str(missing),
             "--store", str(tmp_path / "wh.sqlite")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()


class TestSqliteCacheDir:
    def test_sweep_cache_dir_accepts_warehouse_path(self, tmp_path, capsys):
        args = [
            "sweep",
            "--trackers", "none",
            "--workloads", "453.povray",
            "--requests", "200",
            "--cache-dir", str(tmp_path / "wh.sqlite"),
            "-o", str(tmp_path / "report.json"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        capsys.readouterr()
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["summary"]["cache_hit_rate"] == 1.0
        # The sweep filled a queryable warehouse as a side effect.
        assert len(SqliteStore(tmp_path / "wh.sqlite").query(tracker="none")) == 1


class TestFigureParityAcrossBackends:
    """Figures/tables render identical numbers from the warehouse and the
    legacy JSON cache (the acceptance criterion's figure3/4/11/12 + table4
    generators all run through the same SweepRunner plumbing; figure11 and
    table4 cover the benign and attack/energy paths in tier-1 time)."""

    def test_figure11_and_table4_identical_via_imported_warehouse(self, tmp_path):
        from repro.eval.figures import figure11
        from repro.eval.tables import table4
        from repro.store import import_store

        workloads = ["453.povray"]
        kwargs = dict(workloads=workloads, requests_per_core=250)

        json_runner = SweepRunner(cache_dir=tmp_path / "cache")
        fig_json = figure11(sweep=json_runner, **kwargs)
        tab_json = table4(sweep=json_runner, nrh_values=(500,), **kwargs)

        warehouse = SqliteStore(tmp_path / "wh.sqlite")
        import_store(warehouse, tmp_path / "cache")
        sqlite_runner = SweepRunner(store=warehouse)
        fig_sqlite = figure11(sweep=sqlite_runner, **kwargs)
        tab_sqlite = table4(sweep=sqlite_runner, nrh_values=(500,), **kwargs)

        # Zero re-simulation: every scenario came from the imported records.
        assert sqlite_runner.stats.cache_misses == 0
        assert fig_sqlite.rows == fig_json.rows
        assert tab_sqlite.rows == tab_json.rows
