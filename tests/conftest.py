"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import baseline_config, reduced_row_config
from repro.dram.address import AddressMapper


@pytest.fixture
def config():
    """The paper's baseline configuration (Table I)."""
    return baseline_config()


@pytest.fixture
def small_config():
    """A reduced-row configuration used by simulation-heavy tests."""
    return reduced_row_config(nrh=500, rows_per_bank=2048)


@pytest.fixture
def mapper(config):
    return AddressMapper(config.dram)


@pytest.fixture
def small_mapper(small_config):
    return AddressMapper(small_config.dram)
