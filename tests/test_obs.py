"""Instrumentation layer: zero overhead when off, bit-identical when on.

The observability contract has two hard requirements, both pinned here:

* **Off is free.**  Every hook site is ``if probe is not None`` guarded and
  the no-op :class:`EventSink` allocates nothing per event, so uninstrumented
  simulations carry no measurable cost.
* **On changes nothing.**  Attaching a full probe (trace + metrics +
  profiler) must leave the :class:`SimulationResult` byte-identical on both
  engines -- instrumentation observes the simulation, it never participates.
"""

from __future__ import annotations

import json
import tracemalloc
from pathlib import Path

import pytest

from repro.config import reduced_row_config
from repro.obs import (
    EventSink,
    MetricsSampler,
    PipelineProfiler,
    Probe,
    TraceRecorder,
    validate_chrome_trace,
)
from repro.sim.experiment import run_workload

REQUESTS = 300
ATTACK_WARMUP = 5_000
LLC_WARMUP = 2_000

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "tools" / "trace_schema.json"


def _canon(result) -> dict:
    return json.loads(json.dumps(result.to_dict(), sort_keys=True, default=str))


def _run(tracker: str, engine: str, probe=None, attack="refresh"):
    return run_workload(
        config=reduced_row_config(nrh=500),
        tracker=tracker,
        workload="453.povray",
        attack=attack,
        requests_per_core=REQUESTS,
        attack_warmup_activations=ATTACK_WARMUP,
        llc_warmup_accesses=LLC_WARMUP,
        engine=engine,
        probe=probe,
    )


def _full_probe():
    return Probe(
        trace=TraceRecorder(),
        metrics=MetricsSampler(interval_ns=50_000.0),
        profiler=PipelineProfiler(),
    )


class TestZeroOverhead:
    def test_noop_sink_allocates_nothing_per_event(self):
        sink = EventSink()
        for _ in range(10):            # warm up any lazy interpreter state
            sink.on_request(0, 1.0, 2.0, False, True, False)
            sink.on_llc_access(0, True, False)
            sink.on_dram_access(1, 2, False, 3.0, True, False)
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1_000):
            sink.on_request(0, 1.0, 2.0, False, True, False)
            sink.on_llc_access(0, True, False)
            sink.on_dram_access(1, 2, False, 3.0, True, False)
            sink.on_throttle(0, 5.0, 6.0)
            sink.on_mitigation(7, 8.0)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before <= 512   # bookkeeping noise only, not per-event

    def test_probe_with_no_sinks_fans_out_to_nothing(self):
        probe = Probe()
        assert probe._sinks == ()
        probe.on_request(0, 1.0, 2.0, False, True, False)   # must not raise
        probe.finish()


class TestInstrumentedParity:
    """A full probe must never change the simulation result."""

    @pytest.mark.parametrize("tracker", ["graphene", "blockhammer"])
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_probe_is_invisible_to_results(self, tracker, engine):
        reference = _canon(_run(tracker, engine))
        instrumented = _canon(_run(tracker, engine, probe=_full_probe()))
        assert instrumented == reference

    def test_instrumented_engines_match_each_other(self):
        scalar_probe, batched_probe = _full_probe(), _full_probe()
        scalar = _canon(_run("graphene", "scalar", probe=scalar_probe))
        batched = _canon(_run("graphene", "batched", probe=batched_probe))
        assert scalar == batched
        # Both engines route instrumented requests through the same service
        # path, so the traces must agree event-for-event too.
        assert scalar_probe.trace.events == batched_probe.trace.events


class TestTraceRecorder:
    def test_trace_validates_against_checked_in_schema(self, tmp_path):
        probe = _full_probe()
        _run("graphene", "batched", probe=probe)
        path = tmp_path / "trace.json"
        probe.trace.write(path)
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        assert validate_chrome_trace(trace, schema) == []
        assert trace["otherData"]["recorded_events"] == len(probe.trace.events)

    def test_trace_carries_all_tracks(self):
        probe = _full_probe()
        _run("graphene", "batched", probe=probe)
        from repro.obs.trace import TID_CONTROLLER, TID_CORE_BASE, TID_TRACKER

        tids = {event["tid"] for event in probe.trace.events}
        assert TID_CONTROLLER in tids           # ACT instants
        assert TID_TRACKER in tids              # mitigations / inserts
        assert any(tid >= TID_CORE_BASE for tid in tids)  # request spans
        names = {event["name"] for event in probe.trace.events}
        assert {"read", "ACT", "mitigation", "insert"} <= names

    def test_event_cap_counts_drops_instead_of_growing(self):
        probe = Probe(trace=TraceRecorder(max_events=100))
        _run("graphene", "batched", probe=probe)
        assert len(probe.trace.events) == 100
        assert probe.trace.dropped > 0
        data = probe.trace.chrome_trace()
        assert data["otherData"]["dropped_events"] == probe.trace.dropped

    def test_validator_flags_malformed_documents(self):
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        assert validate_chrome_trace({"traceEvents": []}, schema)   # missing unit
        bad_event = {"traceEvents": [{"ph": "Z", "pid": 1, "name": "x"}],
                     "displayTimeUnit": "ns"}
        assert any("not in" in error
                   for error in validate_chrome_trace(bad_event, schema))


class TestMetricsSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            MetricsSampler(interval_ns=0)

    def test_series_sampled_on_grid_and_monotonic(self):
        sampler = MetricsSampler(interval_ns=50_000.0)
        _run("graphene", "batched", probe=Probe(metrics=sampler))
        assert sampler.samples > 0
        assert "tracker.table_occupancy" in sampler.series   # graphene has one
        for name, points in sampler.series.items():
            timestamps = [t_ns for t_ns, _ in points]
            assert timestamps == sorted(timestamps)
            assert len(timestamps) == len(set(timestamps)), name
        # Cumulative counters must never decrease between samples.
        for name in ("mc.requests", "dram.activations",
                     "tracker.activations_observed"):
            values = [value for _, value in sampler.series[name]]
            assert values == sorted(values), name

    def test_to_rows_round_trips_the_series(self):
        sampler = MetricsSampler(interval_ns=50_000.0)
        _run("none", "batched", probe=Probe(metrics=sampler), attack=None)
        rows = sampler.to_rows()
        assert rows and all(len(row) == 3 for row in rows)
        assert rows == sorted(rows, key=lambda row: (row[0], row[1]))

    def test_short_run_still_produces_a_closing_sample(self):
        # One sample at the horizon even when the run is shorter than the
        # sampling interval.
        sampler = MetricsSampler(interval_ns=1e12)
        _run("none", "batched", probe=Probe(metrics=sampler), attack=None)
        assert sampler.samples == len(sampler.series)
        assert all(len(points) == 1 for points in sampler.series.values())


class TestPipelineProfiler:
    def test_scalar_and_batched_stage_sets(self):
        scalar, batched = PipelineProfiler(), PipelineProfiler()
        _run("graphene", "scalar", probe=Probe(profiler=scalar))
        _run("graphene", "batched", probe=Probe(profiler=batched))
        base = {"llc-warmup", "tracker-warmup", "drain", "collect",
                "mitigation-scan"}
        assert base <= set(scalar.stage_seconds)
        # The batched engine additionally times its vectorised generation.
        assert base | {"generation"} <= set(batched.stage_seconds)

    def test_report_fractions_sum_to_one(self):
        profiler = PipelineProfiler()
        _run("graphene", "batched", probe=Probe(profiler=profiler))
        report = profiler.report()
        assert report["total_seconds"] > 0
        fractions = [stage["fraction"] for stage in report["stages"].values()]
        assert abs(sum(fractions) - 1.0) < 1e-9
        seconds = [stage["seconds"] for stage in report["stages"].values()]
        assert seconds == sorted(seconds, reverse=True)


class TestObsCli:
    def _trace(self, tmp_path, *extra):
        from repro.cli import main

        output = tmp_path / "trace.json"
        argv = [
            "obs", "trace", "--tracker", "graphene", "--attack", "refresh",
            "--nrh", "500", "--requests", "200", "-o", str(output), *extra,
        ]
        assert main(argv) == 0
        return output

    def test_obs_trace_writes_a_valid_trace(self, tmp_path, capsys):
        output = self._trace(tmp_path)
        with open(output, encoding="utf-8") as handle:
            trace = json.load(handle)
        with open(SCHEMA_PATH, encoding="utf-8") as handle:
            schema = json.load(handle)
        assert validate_chrome_trace(trace, schema) == []
        printed = capsys.readouterr().out
        assert "metrics" in printed and "profile" in printed

    def test_obs_trace_persists_metrics_to_the_warehouse(self, tmp_path, capsys):
        from repro.cli import main
        from repro.store import SqliteStore

        warehouse = tmp_path / "wh.sqlite"
        self._trace(tmp_path, "--store", str(warehouse))
        store = SqliteStore(warehouse)
        keys = store.metrics_keys()
        assert len(keys) == 1
        (key,) = keys
        assert store.get(key) is not None       # the run itself is stored too
        series = store.get_metrics(key)
        assert "llc.hit_rate" in series and series["llc.hit_rate"]
        # The store metrics verb resolves unique key prefixes.
        capsys.readouterr()
        assert main(["store", "metrics", "--store", str(warehouse),
                     "--key", key[:10], "--metric", "llc.hit_rate"]) == 0
        assert "llc.hit_rate" in capsys.readouterr().out

    def test_obs_trace_suite_mode(self, tmp_path, capsys):
        from repro.cli import main

        suite = Path("examples/suites/demo_campaign.json")
        output = tmp_path / "suite-trace.json"
        assert main(["obs", "trace", "--suite", str(suite), "--index", "0",
                     "--requests", "100", "-o", str(output)]) == 0
        assert output.exists()
        assert main(["obs", "trace", "--suite", str(suite), "--index", "99",
                     "-o", str(output)]) == 2    # out of range

    def test_verbosity_flags_parse(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["-v", "list-trackers"]) == 0
        assert main(["-qq", "list-trackers"]) == 0
