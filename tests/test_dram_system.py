"""Tests for the request-level DRAM timing model."""

import pytest

from repro.config import MitigationCommand, baseline_config
from repro.dram.address import BankAddress, DecodedAddress, RowAddress
from repro.dram.commands import Blackout, MitigationScope
from repro.dram.dram_system import DRAMSystem


def _decoded(channel=0, rank=0, bank_group=0, bank=0, row=0, column=0):
    return DecodedAddress(channel, rank, bank_group, bank, row, column)


@pytest.fixture
def dram():
    return DRAMSystem(baseline_config())


class TestAccessTiming:
    def test_first_access_pays_full_activation(self, dram):
        t = dram.timings
        result = dram.access(_decoded(row=5), is_write=False, earliest_ns=0.0)
        assert result.activated
        assert not result.row_hit
        expected = t.trfc_ns + t.trcd_ns + t.tcl_ns + t.tburst_ns
        # The first access also has to wait out the refresh blackout at t=0.
        assert result.completion_ns == pytest.approx(expected)

    def test_row_hit_is_faster_than_conflict(self, dram):
        first = dram.access(_decoded(row=5), False, 0.0)
        hit = dram.access(_decoded(row=5, column=3), False, first.completion_ns)
        conflict = dram.access(_decoded(row=9), False, hit.completion_ns)
        hit_latency = hit.completion_ns - first.completion_ns
        conflict_latency = conflict.completion_ns - hit.completion_ns
        assert hit.row_hit
        assert conflict.activated
        assert conflict_latency > hit_latency

    def test_same_bank_activations_respect_trc(self, dram):
        t = dram.timings
        first = dram.access(_decoded(row=1), False, 0.0)
        second = dram.access(_decoded(row=2), False, first.start_ns)
        bank = dram.bank_state(BankAddress(0, 0, 0, 0))
        assert bank.activations == 2
        assert second.completion_ns - first.start_ns >= t.trc_ns

    def test_different_banks_overlap(self, dram):
        a = dram.access(_decoded(bank=0, row=1), False, 0.0)
        b = dram.access(_decoded(bank=1, row=1), False, 0.0)
        # The second bank does not wait a full row cycle behind the first.
        assert b.completion_ns - a.completion_ns < dram.timings.trc_ns

    def test_write_recovery_blocks_bank(self, dram):
        write = dram.access(_decoded(row=1), is_write=True, earliest_ns=0.0)
        bank = dram.bank_state(BankAddress(0, 0, 0, 0))
        assert bank.ready_ns >= write.completion_ns + dram.timings.twr_ns

    def test_stats_track_hits_and_misses(self, dram):
        dram.access(_decoded(row=1), False, 0.0)
        dram.access(_decoded(row=1, column=2), False, 1000.0)
        dram.access(_decoded(row=2), False, 2000.0)
        assert dram.stats.row_hits == 1
        assert dram.stats.row_misses == 1
        assert dram.stats.row_conflicts == 1
        assert dram.row_buffer_hit_rate() == pytest.approx(1 / 3)

    def test_prac_style_extension_lengthens_activation(self, dram):
        base = dram.access(_decoded(bank=2, row=1), False, 0.0)
        other = DRAMSystem(baseline_config())
        extended = other.access(
            _decoded(bank=2, row=1), False, 0.0, extra_act_delay_ns=10.0
        )
        assert extended.completion_ns > base.completion_ns


class TestRefreshInteraction:
    def test_access_avoids_refresh_blackout(self, dram):
        t = dram.timings
        result = dram.access(_decoded(row=1), False, 0.0)
        assert result.start_ns >= t.trfc_ns

    def test_access_between_refreshes_not_delayed(self, dram):
        t = dram.timings
        start = t.trfc_ns + 100.0
        result = dram.access(_decoded(row=1), False, start)
        assert result.start_ns == pytest.approx(start)


class TestMitigations:
    def test_vrr_blocks_only_target_bank(self, dram):
        aggressor = RowAddress(BankAddress(0, 0, 0, 0), 100)
        duration = dram.victim_refresh(aggressor, 1, MitigationCommand.VRR, 1000.0)
        assert duration == pytest.approx(2 * dram.timings.vrr_per_victim_ns)
        blocked = dram.bank_state(BankAddress(0, 0, 0, 0))
        untouched = dram.bank_state(BankAddress(0, 0, 1, 0))
        assert blocked.blocked_until_ns == pytest.approx(1000.0 + duration)
        assert untouched.blocked_until_ns == 0.0

    def test_drfm_blocks_same_bank_in_every_group(self, dram):
        aggressor = RowAddress(BankAddress(0, 0, 2, 1), 100)
        dram.victim_refresh(aggressor, 2, MitigationCommand.DRFM_SB, 0.0)
        for group in range(dram.org.bank_groups_per_rank):
            bank = dram.bank_state(BankAddress(0, 0, group, 1))
            assert bank.blocked_until_ns == pytest.approx(dram.timings.drfm_sb_ns)
        other = dram.bank_state(BankAddress(0, 0, 0, 0))
        assert other.blocked_until_ns == 0.0

    def test_blast_radius_two_doubles_vrr_time(self, dram):
        aggressor = RowAddress(BankAddress(0, 0, 0, 0), 100)
        d1 = dram.victim_refresh(aggressor, 1, MitigationCommand.VRR, 0.0)
        d2 = dram.victim_refresh(aggressor, 2, MitigationCommand.VRR, 0.0)
        assert d2 == pytest.approx(2 * d1)

    def test_rank_blackout_blocks_and_closes_rows(self, dram):
        dram.access(_decoded(row=7), False, 0.0)
        blackout = Blackout(
            scope=MitigationScope.RANK,
            channel=0,
            rank=0,
            duration_ns=1_000_000.0,
            reason="test-reset",
        )
        end = dram.apply_blackout(blackout, 500.0)
        assert end == pytest.approx(500.0 + 1_000_000.0)
        assert dram.bank_state(BankAddress(0, 0, 0, 0)).open_row is None
        later = dram.access(_decoded(row=9), False, 600.0)
        assert later.start_ns >= end

    def test_channel_blackout_blocks_both_ranks(self, dram):
        blackout = Blackout(
            scope=MitigationScope.CHANNEL,
            channel=1,
            rank=0,
            duration_ns=10_000.0,
            reason="test",
        )
        dram.apply_blackout(blackout, 0.0)
        delayed = dram.access(_decoded(channel=1, rank=1, row=3), False, 0.0)
        assert delayed.start_ns >= 10_000.0
        unaffected = dram.access(_decoded(channel=0, row=3), False, 0.0)
        assert unaffected.start_ns < 10_000.0

    def test_blackout_statistics(self, dram):
        blackout = Blackout(
            scope=MitigationScope.BANK, channel=0, rank=0, duration_ns=100.0, reason="x"
        )
        dram.apply_blackout(blackout, 0.0)
        assert dram.stats.blackouts == 1
        assert dram.stats.blackout_time_ns == pytest.approx(100.0)
        assert dram.stats.blackout_time_by_reason["x"] == pytest.approx(100.0)


class TestCounterTraffic:
    def test_counter_accesses_round_robin_banks(self, dram):
        results = [dram.counter_access(0, 0, 0.0, is_write=False) for _ in range(8)]
        banks = {result.bank for result in results}
        assert len(banks) == 8
        assert dram.stats.counter_reads == 8

    def test_counter_writes_counted_separately(self, dram):
        dram.counter_access(0, 0, 0.0, is_write=True)
        assert dram.stats.counter_writes == 1
        assert dram.stats.counter_reads == 0

    def test_counter_accesses_consume_bank_time(self, dram):
        before = dram.stats.activations
        dram.counter_access(0, 0, 0.0, is_write=False)
        assert dram.stats.activations == before + 1


class TestEnergyAccounting:
    def test_energy_report_includes_refresh(self, dram):
        dram.access(_decoded(row=1), False, 0.0)
        report = dram.energy_report(elapsed_ns=1_000_000.0)
        assert report.total_nj > 0
        from repro.dram.commands import CommandKind

        assert report.command_counts[CommandKind.REF] > 0
        assert report.command_counts[CommandKind.ACT] == 1
