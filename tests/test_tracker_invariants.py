"""Interface invariants every registered tracker must satisfy.

These tests are parametrised over the whole registry, so any tracker added in
the future is automatically held to the same contract the memory controller
relies on: responses reference valid DRAM coordinates, storage reports do not
drift with runtime state, periodic resets actually reset, and statistics stay
consistent with the activation stream.
"""

import pytest

from repro.config import baseline_config
from repro.dram.address import BankAddress, RowAddress
from repro.dram.commands import MitigationScope
from repro.trackers.registry import available_trackers, create_tracker

#: Trackers whose mitigation decisions are deterministic functions of the
#: activation stream (no sampling), used for the reset-behaviour checks.
DETERMINISTIC = (
    "hydra",
    "start",
    "comet",
    "abacus",
    "graphene",
    "prac",
    "dapper-s",
    "dapper-h",
)

ALL_TRACKERS = available_trackers() + ("breakhammer:dapper-h",)


def _row(row=1000, bank=0, bank_group=0, rank=0, channel=0):
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


@pytest.fixture(scope="module")
def config():
    return baseline_config(nrh=500)


def _drive(tracker, rows, repeats, now_step=10.0):
    """Activate ``rows`` round-robin ``repeats`` times and collect responses."""
    responses = []
    now = 0.0
    for _ in range(repeats):
        for row in rows:
            responses.append(tracker.on_activation(row, now))
            now += now_step
    return responses


@pytest.mark.parametrize("name", ALL_TRACKERS)
class TestResponseValidity:
    def test_responses_reference_valid_dram_coordinates(self, config, name):
        tracker = create_tracker(name, config)
        org = config.dram
        rows = [_row(row=i * 37 % 5000, bank=i % 4, rank=i % 2) for i in range(32)]
        for response in _drive(tracker, rows, repeats=40):
            assert response.counter_reads >= 0
            assert response.counter_writes >= 0
            for target in response.mitigations:
                assert 0 <= target.row < org.rows_per_bank
                assert 0 <= target.bank.channel < org.channels
                assert 0 <= target.bank.rank < org.ranks_per_channel
                assert 0 <= target.bank.bank_group < org.bank_groups_per_rank
                assert 0 <= target.bank.bank < org.banks_per_group
            for blackout in response.blackouts:
                assert blackout.scope in MitigationScope
                assert blackout.duration_ns >= 0.0
            for group in response.group_mitigations:
                assert group.num_rows > 0
                assert 0 <= group.channel < org.channels
                assert 0 <= group.rank < org.ranks_per_channel

    def test_activation_statistics_match_the_stream(self, config, name):
        tracker = create_tracker(name, config)
        rows = [_row(row=i) for i in range(8)]
        _drive(tracker, rows, repeats=50)
        assert tracker.stats.activations_observed == 8 * 50

    def test_storage_report_does_not_drift_with_runtime_state(self, config, name):
        tracker = create_tracker(name, config)
        before = tracker.storage_report()
        _drive(tracker, [_row(row=i) for i in range(64)], repeats=20)
        tracker.on_refresh_window(1, 1e6)
        after = tracker.storage_report()
        assert before == after

    def test_hook_defaults_are_non_negative(self, config, name):
        tracker = create_tracker(name, config)
        tracker.note_request_source(2)
        assert tracker.throttle_delay_ns(_row(), 0.0) >= 0.0
        assert tracker.completion_delay_ns(_row(), 0.0) >= 0.0
        assert tracker.activation_extension_ns() >= 0.0


@pytest.mark.parametrize("name", DETERMINISTIC)
class TestDeterministicTrackerBehaviour:
    def test_single_activation_never_triggers_a_mitigation(self, config, name):
        """One activation of a cold tracker is far below any threshold."""
        tracker = create_tracker(name, config)
        response = tracker.on_activation(_row(row=123), 0.0)
        assert not response.mitigations
        assert not response.group_mitigations
        assert not response.blackouts

    def test_refresh_window_reset_forgets_accumulated_pressure(self, config, name):
        """After a periodic reset the next activation looks like a cold start."""
        tracker = create_tracker(name, config)
        threshold = config.rowhammer.mitigation_threshold
        target = _row(row=77)
        _drive(tracker, [target], repeats=threshold - 1, now_step=50.0)
        tracker.on_refresh_window(1, config.timings.trefw_ns)
        response = tracker.on_activation(target, config.timings.trefw_ns + 100.0)
        assert not response.mitigations
        assert not response.blackouts

    def test_hammering_one_row_eventually_mitigates_it(self, config, name):
        """Within NRH activations the hammered row's victims get refreshed."""
        tracker = create_tracker(name, config)
        target = _row(row=4242)
        protected = False
        now = 0.0
        for _ in range(config.rowhammer.nrh):
            response = tracker.on_activation(target, now)
            now += 50.0
            hammered_row_covered = any(
                mitigated.row == target.row and mitigated.bank == target.bank
                for mitigated in response.mitigations
            ) or any(
                group.covers(target.rank_row_index(config.dram))
                for group in response.group_mitigations
            )
            if hammered_row_covered or response.blackouts:
                protected = True
                break
        assert protected, f"{name} never refreshed a row hammered NRH times"
