"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_list_trackers(self, capsys):
        assert main(["list-trackers"]) == 0
        output = capsys.readouterr().out
        assert "dapper-h" in output
        assert "hydra" in output

    def test_list_workloads_all(self, capsys):
        assert main(["list-workloads"]) == 0
        output = capsys.readouterr().out
        assert "429.mcf" in output
        assert "ycsb-a" in output

    def test_list_workloads_filtered_by_suite(self, capsys):
        assert main(["list-workloads", "--suite", "TPC"]) == 0
        output = capsys.readouterr().out
        assert "tpcc64" in output
        assert "429.mcf" not in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStorageCommand:
    def test_storage_table_printed(self, capsys):
        assert main(["storage"]) == 0
        output = capsys.readouterr().out
        assert "dapper-h" in output
        assert "sram_kb" in output


class TestRunCommand:
    def test_benign_run(self, capsys):
        code = main(
            [
                "run",
                "--tracker", "dapper-h",
                "--workload", "403.gcc",
                "--requests", "1000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "normalized perf" in output
        assert "mitigations" in output

    def test_attack_run_with_matched_baseline(self, capsys):
        code = main(
            [
                "run",
                "--tracker", "dapper-s",
                "--workload", "403.gcc",
                "--attack", "refresh",
                "--requests", "1000",
                "--attack-matched-baseline",
            ]
        )
        assert code == 0
        assert "refresh" in capsys.readouterr().out

    def test_unknown_tracker_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--tracker", "definitely-not-a-tracker"])


class TestSecurityCommand:
    def test_protected_system_is_secure(self, capsys):
        code = main(
            ["security", "--tracker", "dapper-h", "--requests", "1200"]
        )
        assert code == 0
        assert "SECURE" in capsys.readouterr().out

    def test_unprotected_system_is_vulnerable(self, capsys):
        code = main(["security", "--tracker", "none", "--requests", "1200"])
        assert code == 0        # "none" is allowed to be vulnerable
        assert "VULNERABLE" in capsys.readouterr().out
