"""Tests for performance metrics and the evaluation reporting helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.report import FigureData, format_table
from repro.sim.metrics import (
    geometric_mean,
    normalized_performance,
    slowdown_percent,
    weighted_speedup,
)


class TestMetrics:
    def test_identical_ipcs_give_unity(self):
        assert normalized_performance([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_half_speed_gives_half(self):
        assert normalized_performance([0.5, 1.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_weighted_speedup_sums_ratios(self):
        assert weighted_speedup([1.0, 1.0], [2.0, 4.0]) == pytest.approx(0.75)

    def test_slowdown_percent(self):
        assert slowdown_percent(0.9) == pytest.approx(10.0)
        assert slowdown_percent(1.0) == pytest.approx(0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_zero_baseline_treated_as_zero_ratio(self):
        assert normalized_performance([1.0], [0.0]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        ipcs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8),
        factor=st.floats(0.1, 1.0),
    )
    def test_scaling_property(self, ipcs, factor):
        scaled = [value * factor for value in ipcs]
        assert normalized_performance(scaled, ipcs) == pytest.approx(factor, rel=1e-6)


class TestFigureData:
    def test_add_and_column(self):
        figure = FigureData(name="f", title="t")
        figure.add(series="a", value=1.0)
        figure.add(series="b", value=2.0)
        assert figure.column("value") == [1.0, 2.0]

    def test_filter_and_value(self):
        figure = FigureData(name="f", title="t")
        figure.add(series="a", nrh=500, value=1.0)
        figure.add(series="a", nrh=1000, value=2.0)
        assert figure.value("value", series="a", nrh=1000) == 2.0
        assert len(figure.filter(series="a")) == 2

    def test_value_requires_unique_match(self):
        figure = FigureData(name="f", title="t")
        figure.add(series="a", value=1.0)
        figure.add(series="a", value=2.0)
        with pytest.raises(KeyError):
            figure.value("value", series="a")

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bbb": 2.5}, {"a": 10, "bbb": 0.125}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]

    def test_format_empty(self):
        assert format_table([]) == "(no data)"
