"""Tests for workload profiles, trace generation and the core model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CoreConfig, DRAMOrganization
from repro.cpu.core import CoreModel
from repro.cpu.trace import TraceEntry, WorkloadTraceGenerator
from repro.cpu.workloads import (
    ALL_WORKLOADS,
    SUITES,
    get_workload,
    memory_intensive_workloads,
    suite_counts,
    workloads_in_suite,
)
from repro.dram.address import AddressMapper


class TestWorkloadCatalogue:
    def test_total_count_is_57(self):
        assert len(ALL_WORKLOADS) == 57

    def test_suite_counts_match_paper(self):
        counts = suite_counts()
        assert counts == {
            "SPEC2K6": 23,
            "SPEC2K17": 18,
            "TPC": 4,
            "Hadoop": 3,
            "MediaBench": 3,
            "YCSB": 6,
        }

    def test_names_are_unique(self):
        names = [profile.name for profile in ALL_WORKLOADS]
        assert len(names) == len(set(names))

    def test_get_workload(self):
        assert get_workload("429.mcf").suite == "SPEC2K6"
        with pytest.raises(KeyError):
            get_workload("no-such-workload")

    def test_workloads_in_suite(self):
        for suite in SUITES:
            assert all(p.suite == suite for p in workloads_in_suite(suite))
        with pytest.raises(ValueError):
            workloads_in_suite("SPEC2030")

    def test_memory_intensive_set_contains_known_heavy_hitters(self):
        names = {profile.name for profile in memory_intensive_workloads()}
        assert "429.mcf" in names
        assert "510.parest" in names
        assert "453.povray" not in names

    def test_profiles_are_physically_plausible(self):
        for profile in ALL_WORKLOADS:
            assert profile.apki > 0
            assert 0.0 <= profile.row_locality <= 1.0
            assert 0.0 <= profile.write_fraction <= 1.0
            assert profile.footprint_bytes > 0


class TestTraceGenerator:
    def _generator(self, name="429.mcf", core_id=0, seed=1):
        org = DRAMOrganization()
        return WorkloadTraceGenerator(
            get_workload(name), org, AddressMapper(org), core_id, seed
        )

    def test_entries_are_well_formed(self):
        gen = self._generator()
        for _ in range(500):
            entry = gen.next_entry()
            assert isinstance(entry, TraceEntry)
            assert entry.gap_instructions >= 1
            assert entry.address >= 0

    def test_deterministic_given_seed(self):
        a = self._generator(seed=9)
        b = self._generator(seed=9)
        assert [a.next_entry() for _ in range(100)] == [
            b.next_entry() for _ in range(100)
        ]

    def test_different_cores_use_disjoint_regions(self):
        a = self._generator(core_id=0)
        b = self._generator(core_id=1)
        a_addresses = {a.next_entry().address for _ in range(2000)}
        b_addresses = {b.next_entry().address for _ in range(2000)}
        assert not (a_addresses & b_addresses)

    def test_mean_gap_tracks_apki(self):
        gen = self._generator("470.lbm")          # APKI 33 -> ~30 instructions
        gaps = [gen.next_entry().gap_instructions for _ in range(3000)]
        mean = sum(gaps) / len(gaps)
        assert 15 < mean < 60

    def test_write_fraction_roughly_respected(self):
        gen = self._generator("470.lbm")          # 45% writes
        writes = sum(gen.next_entry().is_write for _ in range(4000))
        assert 0.3 < writes / 4000 < 0.6

    def test_high_locality_workload_produces_sequential_runs(self):
        gen = self._generator("462.libquantum")   # locality 0.92
        line = 64
        sequential = 0
        previous = gen.next_entry().address
        for _ in range(2000):
            entry = gen.next_entry()
            if entry.address == previous + line:
                sequential += 1
            previous = entry.address
        assert sequential > 1000

    def test_zero_apki_rejected(self):
        import dataclasses

        org = DRAMOrganization()
        broken = dataclasses.replace(get_workload("429.mcf"), apki=0.0)
        with pytest.raises(ValueError):
            WorkloadTraceGenerator(broken, org, AddressMapper(org), 0, 1)


class TestCoreModel:
    def _core(self, mlp=4, gap=10.0, budget=None):
        config = CoreConfig(max_outstanding_misses=mlp)

        class _Gen:
            bypasses_llc = False

            def next_entry(self):  # pragma: no cover - unused
                raise NotImplementedError

        return CoreModel(0, config, _Gen(), budget, mean_gap_instructions=gap)

    def test_effective_mlp_limited_by_rob(self):
        core = self._core(mlp=8, gap=100.0)       # 128-entry ROB / 100 = 1
        assert core.effective_mlp == 1
        core = self._core(mlp=8, gap=1.0)
        assert core.effective_mlp == 8

    def test_issue_time_advances_with_compute_gap(self):
        core = self._core(gap=16.0)
        entry = TraceEntry(gap_instructions=160, address=0, is_write=False)
        issue = core.begin_request(entry)
        assert issue == pytest.approx(160 / core.config.peak_instructions_per_ns)

    def test_mlp_limit_stalls_the_core(self):
        core = self._core(mlp=2, gap=1.0)
        entry = TraceEntry(gap_instructions=1, address=0, is_write=False)
        core.begin_request(entry)
        core.complete_read(1000.0)
        core.begin_request(entry)
        core.complete_read(2000.0)
        issue = core.begin_request(entry)          # both slots full
        assert issue >= 1000.0

    def test_ipc_reflects_memory_latency(self):
        fast = self._core(mlp=4, gap=10.0, budget=100)
        slow = self._core(mlp=4, gap=10.0, budget=100)
        entry = TraceEntry(gap_instructions=10, address=0, is_write=False)
        for core, latency in ((fast, 20.0), (slow, 500.0)):
            for _ in range(100):
                issue = core.begin_request(entry)
                core.complete_read(issue + latency)
            core.note_progress()
        assert fast.result().ipc > slow.result().ipc

    def test_budget_freezes_statistics(self):
        core = self._core(budget=3)
        entry = TraceEntry(gap_instructions=10, address=0, is_write=False)
        for _ in range(3):
            core.begin_request(entry)
        core.note_progress()
        frozen = core.result().instructions
        core.begin_request(entry)
        assert core.result().instructions == frozen

    def test_writes_do_not_occupy_slots(self):
        core = self._core(mlp=1, gap=1.0)
        entry = TraceEntry(gap_instructions=1, address=0, is_write=True)
        first = core.begin_request(entry)
        second = core.begin_request(entry)
        assert second - first < 1.0

    @settings(max_examples=30, deadline=None)
    @given(latency=st.floats(min_value=10.0, max_value=1000.0))
    def test_ipc_monotone_in_latency(self, latency):
        base = self._core(mlp=2, gap=10.0, budget=50)
        worse = self._core(mlp=2, gap=10.0, budget=50)
        entry = TraceEntry(gap_instructions=10, address=0, is_write=False)
        for core, lat in ((base, latency), (worse, latency * 2)):
            for _ in range(50):
                issue = core.begin_request(entry)
                core.complete_read(issue + lat)
            core.note_progress()
        assert base.result().ipc >= worse.result().ipc
