"""Tests for the analytical security models and the ground-truth auditor."""

import pytest

from repro.analysis.dapper_h_security import analyze_dapper_h_mapping_capture
from repro.analysis.mapping_capture import (
    analyze_dapper_s_mapping_capture,
    table2_rows,
)
from repro.analysis.security import GroundTruthAuditor
from repro.analysis.storage import PAPER_TABLE3, storage_comparison_table
from repro.config import baseline_config
from repro.dram.address import BankAddress, RowAddress
from repro.trackers.base import GroupMitigation


def _row(row=1000, bank=0, bank_group=0, rank=0, channel=0):
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


class TestMappingCaptureModel:
    def test_matches_paper_table2_at_12us(self):
        """The paper reports ~630 iterations / 7.6 ms; the closed-form model
        reproduces the order of magnitude (hundreds of iterations, a few
        milliseconds -- i.e. a single hash is broken well within one tREFW)."""
        analysis = analyze_dapper_s_mapping_capture(12_000.0)
        assert 250 <= analysis.expected_attack_iterations <= 1000
        assert 3.0 <= analysis.expected_attack_time_ms <= 12.0
        assert analysis.expected_attack_time_ms < 32.0   # broken within tREFW

    def test_matches_paper_table2_at_36us(self):
        analysis = analyze_dapper_s_mapping_capture(36_000.0)
        # Paper: 1.8 iterations, 64 us.
        assert analysis.expected_attack_iterations < 4.0
        assert analysis.expected_attack_time_us < 200.0

    def test_longer_reset_period_is_easier_to_attack(self):
        short = analyze_dapper_s_mapping_capture(12_000.0)
        long = analyze_dapper_s_mapping_capture(36_000.0)
        assert long.expected_attack_iterations < short.expected_attack_iterations

    def test_reset_shorter_than_charge_time_is_unbreakable(self):
        analysis = analyze_dapper_s_mapping_capture(5_000.0)
        assert analysis.expected_attack_time_ns == float("inf")

    def test_table2_rows_structure(self):
        rows = table2_rows()
        assert len(rows) == 3
        assert {row["reset_period_us"] for row in rows} == {36.0, 24.0, 12.0}


class TestDapperHSecurityModel:
    def test_prevention_rate_is_approximately_9999_in_10000(self):
        analysis = analyze_dapper_h_mapping_capture()
        # Paper: 99.99% prevention within a refresh window.
        assert analysis.prevention_rate >= 0.9995
        assert analysis.success_probability_per_window < 5e-4

    def test_trials_are_limited_by_the_bit_vector(self):
        analysis = analyze_dapper_h_mapping_capture()
        assert analysis.trials_per_refresh_window <= 3000

    def test_smaller_groups_are_harder_to_guess(self):
        coarse = analyze_dapper_h_mapping_capture(group_size=512)
        fine = analyze_dapper_h_mapping_capture(group_size=128)
        assert fine.success_probability_per_window < coarse.success_probability_per_window


class TestStorageTable:
    def test_all_requested_trackers_present(self):
        rows = storage_comparison_table()
        names = {row.tracker for row in rows}
        assert {"hydra", "comet", "start", "abacus", "dapper-s", "dapper-h"} <= names

    def test_dapper_h_matches_paper_96kb(self):
        rows = {row.tracker: row for row in storage_comparison_table()}
        assert rows["dapper-h"].sram_kb == pytest.approx(96.0, rel=0.05)

    def test_paper_reference_values_attached(self):
        rows = {row.tracker: row for row in storage_comparison_table()}
        for name, (sram, cam, area) in PAPER_TABLE3.items():
            assert rows[name].paper_sram_kb == sram
            assert rows[name].paper_cam_kb == cam
            assert rows[name].paper_die_area_mm2 == area

    def test_die_area_increases_with_storage(self):
        rows = {row.tracker: row for row in storage_comparison_table()}
        assert rows["dapper-h"].die_area_mm2 > rows["start"].die_area_mm2


class TestGroundTruthAuditor:
    def test_counts_activations(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(10):
            auditor.on_activation(_row(), 0.0)
        assert auditor.max_count == 10

    def test_violation_detected_past_nrh(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(501):
            auditor.on_activation(_row(), 0.0)
        report = auditor.report()
        assert not report.is_secure
        assert report.violations[0].count == 501

    def test_mitigation_resets_the_aggressor(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        auditor.on_mitigation(_row(), blast_radius=1)
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        assert auditor.report().is_secure

    def test_group_mitigation_resets_covered_rows(self):
        config = baseline_config(nrh=500)
        auditor = GroundTruthAuditor(config)
        row = _row(row=100)
        rank_row = row.rank_row_index(config.dram)
        for _ in range(400):
            auditor.on_activation(row, 0.0)
        auditor.on_group_mitigation(
            GroupMitigation(
                channel=0,
                rank=0,
                num_rows=256,
                rows_per_bank=8,
                covers=lambda index: index == rank_row,
            )
        )
        for _ in range(400):
            auditor.on_activation(row, 0.0)
        assert auditor.report().is_secure

    def test_structure_reset_clears_the_rank(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        auditor.on_structure_reset(channel=0, rank=0)
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        assert auditor.report().is_secure

    def test_structure_reset_of_other_rank_does_not_help(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        auditor.on_structure_reset(channel=0, rank=1)
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        assert not auditor.report().is_secure

    def test_refresh_window_resets_everything(self):
        auditor = GroundTruthAuditor(baseline_config(nrh=500))
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        auditor.on_refresh_window(1)
        for _ in range(400):
            auditor.on_activation(_row(), 0.0)
        assert auditor.report().is_secure

    def test_report_tracks_row_count(self):
        auditor = GroundTruthAuditor(baseline_config())
        auditor.on_activation(_row(row=1), 0.0)
        auditor.on_activation(_row(row=2), 0.0)
        assert auditor.report().rows_tracked == 2
