"""Tests for the memory controller and its tracker integration."""

import pytest

from repro.analysis.security import GroundTruthAuditor
from repro.config import MitigationCommand, baseline_config
from repro.dram.address import AddressMapper, BankAddress, RowAddress
from repro.dram.commands import Blackout, MitigationScope
from repro.dram.dram_system import DRAMSystem
from repro.mc.controller import MemoryController
from repro.trackers.base import (
    EMPTY_RESPONSE,
    GroupMitigation,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


class ScriptedTracker(RowHammerTracker):
    """Tracker double returning a queued list of responses."""

    name = "scripted"

    def __init__(self, config, responses=None, throttle_ns=0.0, extension_ns=0.0):
        super().__init__(config)
        self.responses = list(responses or [])
        self.throttle_ns = throttle_ns
        self.extension_ns = extension_ns
        self.activations = []
        self.refresh_windows = []

    def throttle_delay_ns(self, row, now_ns):
        return self.throttle_ns

    def activation_extension_ns(self):
        return self.extension_ns

    def on_activation(self, row, now_ns):
        self.activations.append((row, now_ns))
        if self.responses:
            return self.responses.pop(0)
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index, now_ns):
        self.refresh_windows.append(window_index)
        return EMPTY_RESPONSE

    def storage_report(self):
        return StorageReport()


class DoubleDelayTracker(ScriptedTracker):
    """Tracker double that delays a request at both issue and completion."""

    name = "double-delay"

    def __init__(self, config, throttle_ns=0.0, completion_ns=0.0):
        super().__init__(config, throttle_ns=throttle_ns)
        self.completion_ns = completion_ns

    def completion_delay_ns(self, row, completion_ns):
        return self.completion_ns


@pytest.fixture
def config():
    return baseline_config(nrh=500)


def _controller(config, tracker, auditor=None):
    dram = DRAMSystem(config)
    return MemoryController(config, dram, tracker, AddressMapper(config.dram), auditor)


def _address(config, row=100, bank=0, channel=0):
    return AddressMapper(config.dram).encode(
        channel=channel, rank=0, bank_group=0, bank=bank, row=row
    )


class TestServicePath:
    def test_activation_reported_to_tracker(self, config):
        tracker = ScriptedTracker(config)
        mc = _controller(config, tracker)
        mc.service(_address(config, row=5), False, 0.0)
        assert len(tracker.activations) == 1
        assert tracker.activations[0][0].row == 5

    def test_row_hit_not_reported(self, config):
        tracker = ScriptedTracker(config)
        mc = _controller(config, tracker)
        first = mc.service(_address(config, row=5), False, 0.0)
        mc.service(_address(config, row=5), False, first)
        assert len(tracker.activations) == 1

    def test_throttle_delays_completion(self, config):
        plain = _controller(config, ScriptedTracker(config))
        throttled = _controller(config, ScriptedTracker(config, throttle_ns=10_000.0))
        fast = plain.service(_address(config), False, 0.0)
        slow = throttled.service(_address(config), False, 0.0)
        assert slow >= fast + 9_000.0
        assert throttled.stats.throttled_requests == 1

    def test_double_delay_counts_request_once(self, config):
        """A request delayed at both issue and completion is one throttled
        request: ``throttled_requests`` counts requests, not delays."""
        tracker = DoubleDelayTracker(config, throttle_ns=10_000.0, completion_ns=7_000.0)
        mc = _controller(config, tracker)
        mc.service(_address(config), False, 0.0)
        assert mc.stats.throttled_requests == 1
        assert mc.stats.throttle_time_ns == pytest.approx(17_000.0)

    def test_completion_only_delay_counts_throttled_request(self, config):
        tracker = DoubleDelayTracker(config, completion_ns=5_000.0)
        mc = _controller(config, tracker)
        mc.service(_address(config), False, 0.0)
        assert mc.stats.throttled_requests == 1
        assert mc.stats.throttle_time_ns == pytest.approx(5_000.0)

    def test_activation_extension_applied(self, config):
        plain = _controller(config, ScriptedTracker(config))
        extended = _controller(config, ScriptedTracker(config, extension_ns=10.0))
        assert extended.service(_address(config), False, 0.0) > plain.service(
            _address(config), False, 0.0
        )

    def test_counter_traffic_issued_to_dram(self, config):
        tracker = ScriptedTracker(
            config, responses=[TrackerResponse(counter_reads=1, counter_writes=1)]
        )
        mc = _controller(config, tracker)
        mc.service(_address(config), False, 0.0)
        assert mc.dram.stats.counter_reads == 1
        assert mc.dram.stats.counter_writes == 1
        assert mc.stats.tracker_counter_accesses == 2

    def test_mitigation_issues_victim_refresh(self, config):
        row = RowAddress(BankAddress(0, 0, 0, 0), 100)
        tracker = ScriptedTracker(config, responses=[TrackerResponse(mitigations=(row,))])
        mc = _controller(config, tracker)
        mc.service(_address(config, row=100), False, 0.0)
        assert mc.dram.stats.victim_refreshes == 1
        assert mc.stats.mitigation_refreshes == 1

    def test_blackout_applied_and_audited(self, config):
        blackout = Blackout(
            scope=MitigationScope.RANK, channel=0, rank=0, duration_ns=1000.0, reason="r"
        )
        tracker = ScriptedTracker(config, responses=[TrackerResponse(blackouts=(blackout,))])
        auditor = GroundTruthAuditor(config)
        mc = _controller(config, tracker, auditor)
        mc.service(_address(config), False, 0.0)
        assert mc.dram.stats.blackouts == 1
        assert mc.stats.structure_reset_blackouts == 1

    def test_group_mitigation_blocks_rank_and_counts_energy(self, config):
        group = GroupMitigation(
            channel=0, rank=0, num_rows=256, rows_per_bank=8.0, covers=lambda _: True
        )
        tracker = ScriptedTracker(
            config, responses=[TrackerResponse(group_mitigations=(group,))]
        )
        mc = _controller(config, tracker)
        mc.service(_address(config), False, 0.0)
        assert mc.stats.group_mitigations == 1
        assert mc.dram.stats.victim_rows_refreshed == 512     # 256 rows x BR1 victims
        assert mc.dram.stats.blackout_time_ns > 0

    def test_writebacks_counted_as_writes(self, config):
        mc = _controller(config, ScriptedTracker(config))
        mc.service(_address(config), True, 0.0)
        assert mc.stats.write_requests == 1


class TestRefreshWindows:
    def test_tracker_notified_on_window_crossing(self, config):
        tracker = ScriptedTracker(config)
        mc = _controller(config, tracker)
        mc.service(_address(config, row=1), False, 0.0)
        mc.service(_address(config, row=2), False, config.timings.trefw_ns + 10.0)
        assert tracker.refresh_windows == [1]
        assert mc.stats.refresh_windows == 1

    def test_multiple_windows_crossed_at_once(self, config):
        tracker = ScriptedTracker(config)
        mc = _controller(config, tracker)
        mc.service(_address(config, row=1), False, 3.5 * config.timings.trefw_ns)
        assert tracker.refresh_windows == [1, 2, 3]


class TestMitigationCommands:
    def test_drfm_configuration_blocks_more_banks(self, config):
        row = RowAddress(BankAddress(0, 0, 0, 0), 100)
        drfm_config = config.with_mitigation(MitigationCommand.DRFM_SB, 2)
        tracker = ScriptedTracker(
            drfm_config, responses=[TrackerResponse(mitigations=(row,))]
        )
        mc = _controller(drfm_config, tracker)
        mc.service(_address(drfm_config, row=100), False, 0.0)
        # Same bank index in another bank group is blocked too.
        other_group_bank = mc.dram.bank_state(BankAddress(0, 0, 5, 0))
        assert other_group_bank.blocked_until_ns > 0
