"""Empirical Mapping-Capturing attack against the DAPPER trackers."""

import pytest

from repro.attacks.mapping_capture import run_mapping_capture_attack
from repro.config import reduced_row_config
from repro.core.dapper_h import DapperHTracker
from repro.core.dapper_s import DapperSTracker


@pytest.fixture
def config():
    # Smaller row space so the single-hash attack succeeds quickly in a test.
    return reduced_row_config(nrh=500, rows_per_bank=2048)


class TestMappingCaptureAttack:
    def test_dapper_s_mapping_is_capturable(self, config):
        tracker = DapperSTracker(config)
        result = run_mapping_capture_attack(
            tracker, config, max_time_ns=64_000_000.0, seed=3
        )
        assert result.captured
        assert result.captured_row is not None
        # The captured row really does share the target row's group.
        from repro.dram.address import BankAddress, RowAddress

        target = RowAddress(BankAddress(0, 0, 0, 0), 12345)
        probe = RowAddress(BankAddress(0, 0, 0, 1), result.captured_row)
        assert tracker.group_of(target) == tracker.group_of(probe)

    def test_dapper_h_resists_the_capture_attack(self):
        # Full-size row space (2M rows per rank): the double hash makes the
        # per-trial guess probability ~6e-8, so the attack goes nowhere.
        from repro.config import baseline_config

        full_config = baseline_config(nrh=500)
        tracker = DapperHTracker(full_config)
        result = run_mapping_capture_attack(
            tracker, full_config, max_time_ns=8_000_000.0, seed=3
        )
        assert not result.captured

    def test_attack_budget_accounting(self, config):
        tracker = DapperSTracker(config)
        result = run_mapping_capture_attack(
            tracker, config, max_time_ns=4_000_000.0, seed=5
        )
        assert result.target_activations > 0
        assert result.elapsed_ns <= 4_100_000.0
