"""Tests for the ``scenarios`` CLI subcommands: list, show, dry-run, run
(report schema and cache replay), and the exit-code contract for bad suites."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

FAST_SUITE = """
suite: cli-test
defaults: {requests_per_core: 300, geometry: reduced}
scenarios:
  - family: multi-attacker
    params:
      tracker: dapper-h
      attackers: [{attack: refresh, hammer_rate: 0.5}]
      workloads: [453.povray]
  - family: single
    params: {tracker: none, workload: 453.povray}
"""


@pytest.fixture
def suite_path(tmp_path):
    path = tmp_path / "suite.yaml"
    path.write_text(FAST_SUITE, encoding="utf-8")
    return path


def _run(suite_path, tmp_path, *extra: str) -> tuple[int, dict]:
    report_path = tmp_path / "report.json"
    code = main(
        [
            "scenarios", "run", str(suite_path),
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(report_path),
            *extra,
        ]
    )
    report = (
        json.loads(report_path.read_text(encoding="utf-8"))
        if report_path.exists()
        else {}
    )
    return code, report


class TestBrowsing:
    def test_list_names_builtin_families(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("multi-attacker", "workload-blend", "fuzz", "paper-figure3"):
            assert name in out

    def test_show_prints_parameters(self, capsys):
        assert main(["scenarios", "show", "multi-attacker"]) == 0
        out = capsys.readouterr().out
        assert "attackers" in out and "(required)" in out
        assert "hammer_rate" in out

    def test_show_unknown_family_exits_2(self, capsys):
        assert main(["scenarios", "show", "nope"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err


class TestRun:
    def test_report_schema_and_replay(self, suite_path, tmp_path, capsys):
        code, report = _run(suite_path, tmp_path)
        assert code == 0
        assert set(report) == {"suite", "scenarios", "summary"}
        assert report["suite"]["name"] == "cli-test"
        assert report["suite"]["families"] == ["multi-attacker", "single"]
        assert len(report["scenarios"]) == 2
        planned = report["scenarios"][0]
        # One attacker core; the one-entry blend is cycled over the rest.
        assert planned["cores"] == ["attack:refresh@r0.5"] + ["453.povray"] * 3
        assert 0.0 < planned["normalized_performance"] <= 1.5
        capsys.readouterr()

        # Second invocation: everything must replay from the on-disk cache
        # with identical numbers.
        code, replay = _run(suite_path, tmp_path)
        assert code == 0
        assert replay["summary"]["cache_hit_rate"] == 1.0
        assert [s["normalized_performance"] for s in replay["scenarios"]] == [
            s["normalized_performance"] for s in report["scenarios"]
        ]

    def test_dry_run_compiles_without_simulating(self, suite_path, tmp_path, capsys):
        code, report = _run(suite_path, tmp_path, "--dry-run")
        assert code == 0
        assert report == {}  # no report file written
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out

    def test_bad_suite_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenarios: [{family: nope}]", encoding="utf-8")
        assert main(["scenarios", "run", str(bad)]) == 2
        assert "unknown scenario family" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["scenarios", "run", str(tmp_path / "absent.yaml")]) == 2
        assert "cannot read suite file" in capsys.readouterr().err
