"""On-disk result cache behaviour: hit/miss accounting, invalidation when the
configuration or seed changes, and tolerance to corrupted cache files."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import reduced_row_config
from repro.sim.experiment import ExperimentRunner
from repro.sim.sweep import CODE_VERSION, ScenarioSpec, SweepRunner

REQUESTS = 300


@pytest.fixture(scope="module")
def sweep_config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture
def spec(sweep_config):
    return ScenarioSpec(
        tracker="none",
        workload="453.povray",
        requests_per_core=REQUESTS,
        config=sweep_config,
    )


class TestHitMissAccounting:
    def test_cold_run_counts_misses(self, spec, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path, jobs=1)
        outcome = runner.run_one(spec)
        assert not outcome.from_cache
        # The benign "none" scenario is its own baseline: one simulation.
        assert runner.stats.simulations == 1
        assert runner.stats.cache_misses == 1
        assert runner.stats.cache_hits == 0

    def test_fresh_runner_is_served_from_disk(self, spec, tmp_path):
        SweepRunner(cache_dir=tmp_path, jobs=1).run_one(spec)
        replay = SweepRunner(cache_dir=tmp_path, jobs=1)
        outcome = replay.run_one(spec)
        assert outcome.from_cache
        assert outcome.baseline_from_cache
        assert replay.stats.cache_hits == 1
        assert replay.stats.cache_misses == 0
        assert replay.stats.hit_rate == 1.0

    def test_memory_memo_returns_identical_objects(self, spec):
        runner = SweepRunner()     # no disk cache at all
        first = runner.run_one(spec)
        second = runner.run_one(spec)
        assert second.from_cache
        assert second.result is first.result

    def test_batch_shares_baseline_across_trackers(self, sweep_config):
        specs = [
            ScenarioSpec(
                tracker=tracker,
                workload="453.povray",
                requests_per_core=REQUESTS,
                config=sweep_config,
            )
            for tracker in ("none", "dapper-h")
        ]
        runner = SweepRunner()
        runner.run(specs)
        # none-benign (shared baseline + measured run) and dapper-h: 2 sims.
        assert runner.stats.simulations == 2
        assert runner.stats.baselines_shared == 1


class TestInvalidation:
    def test_seed_change_invalidates(self, spec):
        reseeded = dataclasses.replace(spec, seed=1234)
        assert reseeded.cache_key() != spec.cache_key()

    def test_nrh_change_invalidates(self, spec, sweep_config):
        changed = dataclasses.replace(spec, config=sweep_config.with_nrh(250))
        assert changed.cache_key() != spec.cache_key()

    def test_llc_associativity_change_invalidates(self, spec, sweep_config):
        llc = dataclasses.replace(sweep_config.llc, ways=8)
        changed = dataclasses.replace(
            spec, config=dataclasses.replace(sweep_config, llc=llc)
        )
        assert changed.cache_key() != spec.cache_key()

    def test_core_count_and_mlp_change_invalidate(self, spec, sweep_config):
        for cores in (
            dataclasses.replace(sweep_config.cores, num_cores=8),
            dataclasses.replace(sweep_config.cores, max_outstanding_misses=4),
        ):
            changed = dataclasses.replace(
                spec, config=dataclasses.replace(sweep_config, cores=cores)
            )
            assert changed.cache_key() != spec.cache_key()

    def test_requests_change_invalidates(self, spec):
        changed = dataclasses.replace(spec, requests_per_core=REQUESTS + 1)
        assert changed.cache_key() != spec.cache_key()


class TestCorruptionTolerance:
    def _cache_files(self, tmp_path):
        files = list(tmp_path.glob("*.json"))
        assert files, "expected the sweep to have written cache entries"
        return files

    def test_garbage_bytes_fall_back_to_rerun(self, spec, tmp_path):
        reference = SweepRunner(cache_dir=tmp_path).run_one(spec)
        for path in self._cache_files(tmp_path):
            path.write_text("{ this is not json", encoding="utf-8")
        recovered = SweepRunner(cache_dir=tmp_path)
        outcome = recovered.run_one(spec)
        assert not outcome.from_cache           # corruption = miss, not crash
        assert recovered.stats.cache_misses == 1
        assert outcome.normalized == reference.normalized
        # The re-run must heal the cache in place.
        healed = SweepRunner(cache_dir=tmp_path).run_one(spec)
        assert healed.from_cache

    def test_wrong_schema_falls_back_to_rerun(self, spec, tmp_path):
        SweepRunner(cache_dir=tmp_path).run_one(spec)
        for path in self._cache_files(tmp_path):
            path.write_text(
                json.dumps({"code_version": CODE_VERSION, "result": {"bogus": 1}}),
                encoding="utf-8",
            )
        outcome = SweepRunner(cache_dir=tmp_path).run_one(spec)
        assert not outcome.from_cache

    def test_stale_code_version_is_ignored(self, spec, tmp_path):
        SweepRunner(cache_dir=tmp_path).run_one(spec)
        for path in self._cache_files(tmp_path):
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["code_version"] = "some-older-version"
            path.write_text(json.dumps(payload), encoding="utf-8")
        outcome = SweepRunner(cache_dir=tmp_path).run_one(spec)
        assert not outcome.from_cache

    def test_empty_file_falls_back_to_rerun(self, spec, tmp_path):
        SweepRunner(cache_dir=tmp_path).run_one(spec)
        for path in self._cache_files(tmp_path):
            path.write_text("", encoding="utf-8")
        outcome = SweepRunner(cache_dir=tmp_path).run_one(spec)
        assert not outcome.from_cache

    def test_unusable_cache_dir_degrades_to_cacheless_run(self, spec, tmp_path):
        # A regular file where the cache directory should be: every store and
        # load raises OSError, which must degrade to a cache-less sweep
        # rather than losing the completed simulations.
        bogus_dir = tmp_path / "not-a-directory"
        bogus_dir.write_text("occupied", encoding="utf-8")
        runner = SweepRunner(cache_dir=bogus_dir)
        outcome = runner.run_one(spec)
        assert not outcome.from_cache
        assert outcome.normalized == 1.0
        assert bogus_dir.read_text(encoding="utf-8") == "occupied"


class TestExperimentRunnerBaselineKey:
    """Regression tests for the in-memory baseline key: configurations that
    differ in any performance-relevant dimension must not share a baseline."""

    def _keys(self, runner, config_a, config_b):
        from repro.cpu.workloads import get_workload

        profile = get_workload("453.povray")
        return (
            runner._baseline_key(profile, config_a, None),
            runner._baseline_key(profile, config_b, None),
        )

    def test_llc_associativity_distinguishes_baselines(self, sweep_config):
        runner = ExperimentRunner(sweep_config, requests_per_core=REQUESTS)
        llc = dataclasses.replace(sweep_config.llc, ways=8)
        other = dataclasses.replace(sweep_config, llc=llc)
        key_a, key_b = self._keys(runner, sweep_config, other)
        assert key_a != key_b

    def test_core_count_distinguishes_baselines(self, sweep_config):
        runner = ExperimentRunner(sweep_config, requests_per_core=REQUESTS)
        cores = dataclasses.replace(sweep_config.cores, num_cores=8)
        other = dataclasses.replace(sweep_config, cores=cores)
        key_a, key_b = self._keys(runner, sweep_config, other)
        assert key_a != key_b

    def test_mlp_distinguishes_baselines(self, sweep_config):
        runner = ExperimentRunner(sweep_config, requests_per_core=REQUESTS)
        cores = dataclasses.replace(sweep_config.cores, max_outstanding_misses=2)
        other = dataclasses.replace(sweep_config, cores=cores)
        key_a, key_b = self._keys(runner, sweep_config, other)
        assert key_a != key_b

    def test_refresh_window_scale_distinguishes_baselines(self, sweep_config):
        runner = ExperimentRunner(sweep_config, requests_per_core=REQUESTS)
        other = sweep_config.with_refresh_window_scale(0.5)
        key_a, key_b = self._keys(runner, sweep_config, other)
        assert key_a != key_b
