"""The sweep service: router, rate limiting, repository, WSGI app, HTTP
end-to-end (submit -> drain -> paginate), and the CLI client verbs.

Unit layers are exercised by calling the WSGI app directly with a synthetic
environ (no socket); the end-to-end and concurrency tests run a real
threading HTTP server on an ephemeral port.  Simulation work is kept tiny
(two trackers, one workload, 200 requests, reduced geometry) so the whole
module stays fast.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.service import (
    BadRequest,
    CampaignRepository,
    Conflict,
    NotFound,
    RateLimiter,
    ServiceApp,
    ServiceClient,
    ServiceError,
    WorkerPool,
    make_service_server,
)
from repro.service.router import Request, Router, compile_pattern, parse_query
from repro.store import SqliteStore, query_rows
from repro.store.campaign import _manifest_keys

SUITE = {
    "suite": "svc-campaign",
    "description": "tiny campaign for service tests",
    "scenarios": [
        {
            "family": "cross-product",
            "params": {
                "trackers": ["none", "dapper-h"],
                "attacks": ["none"],
                "workloads": ["453.povray"],
                "requests_per_core": 200,
                "geometry": "reduced",
            },
        }
    ],
}

#: Same family, different scenario set -- for name-conflict tests.
OTHER_SUITE = {
    "suite": "svc-campaign",
    "scenarios": [
        {
            "family": "cross-product",
            "params": {
                "trackers": ["graphene"],
                "attacks": ["none"],
                "workloads": ["453.povray"],
                "requests_per_core": 200,
                "geometry": "reduced",
            },
        }
    ],
}


def wsgi_call(app, method, path, body=None, query="", remote="10.0.0.1"):
    """Invoke the WSGI app without a socket; returns (status, doc, headers)."""
    raw = b""
    if body is not None:
        raw = body if isinstance(body, bytes) else json.dumps(body).encode()
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "REMOTE_ADDR": remote,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    document = json.loads(b"".join(chunks).decode("utf-8"))
    return captured["status"], document, captured["headers"]


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "wh.sqlite"
    SqliteStore(path).close()
    return path


@pytest.fixture()
def app(store_path):
    return ServiceApp(CampaignRepository(store_path))


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #


class TestRouter:
    def test_pattern_placeholders_match_one_segment(self):
        pattern = compile_pattern("/api/v1/campaigns/{name}/report")
        match = pattern.match("/api/v1/campaigns/demo/report")
        assert match.groupdict() == {"name": "demo"}
        assert pattern.match("/api/v1/campaigns/a/b/report") is None

    def test_dispatch_binds_params_and_query(self):
        router = Router()
        router.get("/things/{thing}", lambda req: req)
        bound = router.dispatch(
            Request(
                method="GET",
                path="/things/x",
                query=parse_query("limit=5&offset="),
            )
        )
        assert bound.params == {"thing": "x"}
        assert bound.query_int("limit") == 5
        assert bound.query_int("offset", 0) == 0   # blank -> default

    def test_unknown_path_is_404_wrong_method_405(self):
        router = Router()
        router.get("/only-get", lambda req: {})
        with pytest.raises(NotFound):
            router.dispatch(Request(method="GET", path="/nope"))
        with pytest.raises(Exception) as error:
            router.dispatch(Request(method="POST", path="/only-get"))
        assert error.value.status == 405
        assert error.value.details["allowed"] == ["GET"]

    def test_bad_integer_query_is_400(self):
        request = Request(method="GET", path="/", query={"limit": "ten"})
        with pytest.raises(BadRequest):
            request.query_int("limit")


# --------------------------------------------------------------------------- #
# Rate limiting
# --------------------------------------------------------------------------- #


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRateLimiter:
    def test_disabled_always_allows(self):
        limiter = RateLimiter(0.0)
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.acquire("anyone") == (True, 0.0)

    def test_burst_then_deny_with_retry_hint(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=3, clock=clock)
        assert [limiter.acquire("c")[0] for _ in range(3)] == [True] * 3
        allowed, retry_after = limiter.acquire("c")
        assert not allowed
        # Empty bucket at 2 tokens/s: next token in 0.5s.
        assert retry_after == pytest.approx(0.5)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.acquire("c")[0]
        assert not limiter.acquire("c")[0]
        clock.advance(1.0)
        assert limiter.acquire("c")[0]

    def test_buckets_are_per_key(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        assert limiter.acquire("a")[0]
        assert limiter.acquire("b")[0]
        assert not limiter.acquire("a")[0]

    def test_negative_rate_is_refused(self):
        with pytest.raises(ValueError):
            RateLimiter(-1.0)


# --------------------------------------------------------------------------- #
# Repository
# --------------------------------------------------------------------------- #


class TestRepository:
    def test_submit_rejects_malformed_suites(self, store_path):
        repository = CampaignRepository(store_path)
        with pytest.raises(BadRequest):
            repository.submit(["not", "a", "mapping"])
        with pytest.raises(BadRequest) as error:
            repository.submit(
                {"scenarios": [{"family": "no-such-family", "params": {}}]}
            )
        assert "no-such-family" in str(error.value)

    def test_submit_is_idempotent_and_conflicts_on_reuse(self, store_path):
        repository = CampaignRepository(store_path)
        first = repository.submit(SUITE)
        assert first.created and first.name == "svc-campaign"
        again = repository.submit(SUITE)
        assert not again.created and again.name == first.name
        with pytest.raises(Conflict):
            repository.submit(OTHER_SUITE)

    def test_name_override_and_unknown_campaign(self, store_path):
        repository = CampaignRepository(store_path)
        renamed = repository.submit(SUITE, name="renamed")
        assert renamed.name == "renamed"
        assert repository.status("renamed")["entries"] == 2
        with pytest.raises(NotFound):
            repository.status("never-submitted")
        with pytest.raises(NotFound):
            repository.leases("never-submitted")
        with pytest.raises(NotFound):
            repository.report("never-submitted")

    def test_results_pages_match_query_rows(self, store_path):
        from repro.scenarios import parse_suite
        from repro.sim.sweep import SweepRunner

        store = SqliteStore(store_path)
        specs = parse_suite(SUITE).compile()
        SweepRunner(store=store).ensure(
            [spec for s in specs for spec in (s, s.baseline_spec())]
        )
        expected = query_rows(store)
        store.close()
        repository = CampaignRepository(store_path)
        page = repository.results(limit=1, offset=1)
        assert page["rows"] == expected[1:2]
        assert page["returned"] == 1 and page["next_offset"] == 2
        # The final page (page past the data) closes the cursor.
        assert repository.results(limit=5, offset=1)["next_offset"] is None
        assert repository.results(offset=len(expected))["rows"] == []

    def test_aggregate_results_and_report(self, store_path):
        from repro.scenarios import parse_suite
        from repro.sim.sweep import SweepRunner
        from repro.store import aggregate_rows

        store = SqliteStore(store_path)
        specs = parse_suite(SUITE).compile()
        SweepRunner(store=store).ensure(
            [spec for s in specs for spec in (s, s.baseline_spec())]
        )
        stored = query_rows(store)
        expected = aggregate_rows(stored, ["tracker"])
        store.close()
        repository = CampaignRepository(store_path)
        repository.submit(SUITE)

        document = repository.aggregate_results(["tracker"])
        assert document["rows"] == expected
        assert document["source_rows"] == len(stored)

        report = repository.aggregate_report("svc-campaign", ["tracker"])
        assert report["campaign"]["name"] == "svc-campaign"
        assert report["incomplete_entries"] == 0
        assert {row["tracker"] for row in report["rows"]} == {
            "none", "dapper-h",
        }
        for row in report["rows"]:
            assert "normalized_performance_mean" in row
            assert "slowdown_percent_mean" in row

        with pytest.raises(BadRequest):
            repository.aggregate_results([])
        with pytest.raises(NotFound):
            repository.aggregate_report("never-submitted", ["tracker"])


# --------------------------------------------------------------------------- #
# WSGI app (no socket)
# --------------------------------------------------------------------------- #


class TestServiceApp:
    def test_health(self, app):
        status, document, headers = wsgi_call(app, "GET", "/api/v1/health")
        assert status == 200 and document == {"status": "ok"}
        assert headers["Content-Type"].startswith("application/json")

    def test_structured_404_and_405(self, app):
        status, document, _ = wsgi_call(app, "GET", "/api/v1/nope")
        assert status == 404
        assert document["error"]["code"] == "not_found"
        status, document, _ = wsgi_call(app, "GET", "/api/v1/campaigns/x/y/z")
        assert status == 404
        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/health", body={}
        )
        assert status == 405
        assert document["error"]["allowed"] == ["GET"]

    def test_submit_body_validation(self, app):
        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns", body=b"{not json"
        )
        assert status == 400 and "JSON" in document["error"]["message"]
        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns", body=["wrong", "shape"]
        )
        assert status == 400
        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns",
            body={"scenarios": [{"family": "bogus"}]},
        )
        assert status == 400 and "bogus" in document["error"]["message"]

    def test_submit_status_report_leases_flow(self, app):
        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns", body=SUITE
        )
        assert status == 201
        assert document["created"] and not document["queued"]
        assert document["drain"] == "external"     # no pool configured
        campaign = document["campaign"]
        assert campaign["name"] == "svc-campaign"
        assert campaign["state"] == "resumable"

        status, document, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns", body=SUITE
        )
        assert status == 200 and not document["created"]

        status, conflict, _ = wsgi_call(
            app, "POST", "/api/v1/campaigns", body=OTHER_SUITE
        )
        assert status == 409
        assert conflict["error"]["campaign"] == "svc-campaign"

        status, listing, _ = wsgi_call(app, "GET", "/api/v1/campaigns")
        assert [c["name"] for c in listing["campaigns"]] == ["svc-campaign"]
        status, single, _ = wsgi_call(
            app, "GET", "/api/v1/campaigns/svc-campaign"
        )
        assert status == 200 and single["entries"] == 2
        status, leases, _ = wsgi_call(
            app, "GET", "/api/v1/campaigns/svc-campaign/leases"
        )
        assert status == 200 and leases["shards"] == []
        status, report, _ = wsgi_call(
            app, "GET", "/api/v1/campaigns/svc-campaign/report",
            query="offset=0&limit=1",
        )
        assert status == 200
        assert report["rows"] == [] and report["incomplete_entries"] == 2

    def test_results_rejects_bad_pagination(self, app):
        status, document, _ = wsgi_call(
            app, "GET", "/api/v1/results", query="limit=ten"
        )
        assert status == 400
        assert "limit" in document["error"]["message"]

    def test_aggregate_endpoints(self, store_path):
        from repro.scenarios import parse_suite
        from repro.sim.sweep import SweepRunner

        store = SqliteStore(store_path)
        specs = parse_suite(SUITE).compile()
        SweepRunner(store=store).ensure(
            [spec for s in specs for spec in (s, s.baseline_spec())]
        )
        store.close()
        app = ServiceApp(CampaignRepository(store_path))
        wsgi_call(app, "POST", "/api/v1/campaigns", body=SUITE)

        status, document, _ = wsgi_call(
            app, "GET", "/api/v1/results/aggregate", query="group-by=tracker"
        )
        assert status == 200
        assert {row["tracker"] for row in document["rows"]} == {
            "none", "dapper-h",
        }

        # group-by is required; its absence is a structured 400.
        status, document, _ = wsgi_call(app, "GET", "/api/v1/results/aggregate")
        assert status == 400
        assert "group-by" in document["error"]["message"]

        status, document, _ = wsgi_call(
            app, "GET", "/api/v1/campaigns/svc-campaign/aggregate",
            query="group-by=workload&metrics=slowdown_percent",
        )
        assert status == 200
        assert document["group_by"] == ["workload"]
        assert document["rows"]
        for row in document["rows"]:
            assert "slowdown_percent_mean" in row

        status, document, _ = wsgi_call(
            app, "GET", "/api/v1/campaigns/ghost/aggregate",
            query="group-by=tracker",
        )
        assert status == 404

    def test_metrics_endpoints(self, app):
        status, document, _ = wsgi_call(app, "GET", "/api/v1/metrics")
        assert status == 200 and document == {"keys": []}
        status, document, _ = wsgi_call(app, "GET", "/api/v1/metrics/none")
        assert status == 404

    def test_workers_without_pool(self, app):
        status, document, _ = wsgi_call(app, "GET", "/api/v1/workers")
        assert status == 200
        assert document["drain"] == "external" and document["workers"] == []

    def test_rate_limit_429_with_retry_after(self, store_path):
        clock = FakeClock()
        app = ServiceApp(
            CampaignRepository(store_path),
            rate_limiter=RateLimiter(rate=1.0, burst=2, clock=clock),
        )
        assert wsgi_call(app, "GET", "/api/v1/campaigns")[0] == 200
        assert wsgi_call(app, "GET", "/api/v1/campaigns")[0] == 200
        status, document, headers = wsgi_call(app, "GET", "/api/v1/campaigns")
        assert status == 429
        assert document["error"]["code"] == "rate_limited"
        assert float(headers["Retry-After"]) >= 1
        # Health stays reachable for liveness probes, and other clients
        # have their own bucket.
        assert wsgi_call(app, "GET", "/api/v1/health")[0] == 200
        assert wsgi_call(
            app, "GET", "/api/v1/campaigns", remote="10.9.9.9"
        )[0] == 200
        clock.advance(1.0)
        assert wsgi_call(app, "GET", "/api/v1/campaigns")[0] == 200


# --------------------------------------------------------------------------- #
# Concurrent idempotent submission (real HTTP server)
# --------------------------------------------------------------------------- #


@pytest.fixture()
def live_server(store_path):
    """A threading HTTP server over a fresh warehouse, no drain pool."""
    app = ServiceApp(CampaignRepository(store_path))
    server = make_service_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    yield url, store_path
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestConcurrentSubmission:
    def test_racing_posts_converge_on_one_campaign(self, live_server):
        url, store_path = live_server
        submitters = 8
        barrier = threading.Barrier(submitters, timeout=30.0)
        responses: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def _post() -> None:
            request = urllib.request.Request(
                f"{url}/api/v1/campaigns",
                data=json.dumps(SUITE).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            barrier.wait()
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
                with lock:
                    responses.append((response.status, payload))

        threads = [
            threading.Thread(target=_post) for _ in range(submitters)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(responses) == submitters
        # Every response names the same campaign; exactly one created it.
        names = {payload["campaign"]["name"] for _, payload in responses}
        assert names == {"svc-campaign"}
        created = [payload["created"] for _, payload in responses]
        assert created.count(True) == 1
        assert {status for status, _ in responses} == {200, 201}
        # Exactly one manifest in the store, with the suite's keys.
        store = SqliteStore(store_path)
        assert store.campaign_names() == ("svc-campaign",)
        manifest = store.load_campaign("svc-campaign")
        from repro.scenarios import parse_suite
        from repro.store import build_manifest

        expected = build_manifest(
            "svc-campaign", parse_suite(SUITE).compile()
        )
        assert _manifest_keys(manifest) == _manifest_keys(expected)
        store.close()


# --------------------------------------------------------------------------- #
# End-to-end: submit twice -> drain -> paginate (HTTP + pool)
# --------------------------------------------------------------------------- #


class TestEndToEnd:
    def test_submit_drain_and_paginate(self, store_path):
        pool = WorkerPool(
            str(store_path), workers=2, shard_size=1, lease_duration=60.0
        )
        app = ServiceApp(CampaignRepository(store_path), pool=pool)
        server = make_service_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        pool.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            first = client.submit(SUITE)
            assert first["created"] and first["queued"]
            assert first["drain"] == "in-process"
            second = client.submit(SUITE)
            assert not second["created"]
            status = client.wait_complete(
                "svc-campaign", timeout=300.0, interval=0.2
            )
            assert status["percent"] == 100.0
            assert (
                status["simulations_stored"] == status["simulations_total"]
            )
            leases = client.leases("svc-campaign")
            assert leases["summary"]["done"] == leases["summary"]["shards"]
            report = client.report("svc-campaign", offset=1, limit=5)
            assert report["total_rows"] == 2 and report["returned"] == 1
            assert report["next_offset"] is None

            # Pagination through the cursor returns exactly the rows the
            # store query API returns, in the same order.
            paged = client.all_results(page_size=1)
            store = SqliteStore(store_path)
            expected = query_rows(store)
            store.close()
            assert json.dumps(paged) == json.dumps(expected)

            # The campaign completes when the last shard is marked done,
            # slightly before the pool thread returns from run() and books
            # its own shard count -- poll until the pool is idle again.
            deadline = time.monotonic() + 60.0
            while True:
                workers = client.workers()
                idle = all(
                    worker["state"] == "idle"
                    for worker in workers["workers"]
                ) and not workers["queued_campaigns"]
                if idle or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert workers["drain"] == "in-process"
            drained = sum(
                worker["shards_completed"]
                for worker in workers["workers"]
            )
            assert drained == leases["summary"]["shards"]
        finally:
            server.shutdown()
            server.server_close()
            pool.stop(wait=True)
            thread.join(timeout=10)

    def test_client_error_carries_service_document(self, store_path):
        app = ServiceApp(CampaignRepository(store_path))
        server = make_service_server(app, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}"
        )
        try:
            with pytest.raises(ServiceError) as error:
                client.status("missing")
            assert error.value.status == 404
            assert error.value.document["error"]["code"] == "not_found"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# --------------------------------------------------------------------------- #
# CLI: serve/submit/status/results
# --------------------------------------------------------------------------- #


@pytest.fixture()
def pooled_server(store_path):
    pool = WorkerPool(
        str(store_path), workers=1, shard_size=2, lease_duration=60.0
    )
    app = ServiceApp(CampaignRepository(store_path), pool=pool)
    server = make_service_server(app, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    pool.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", store_path
    server.shutdown()
    server.server_close()
    pool.stop(wait=True)
    thread.join(timeout=10)


class TestCliClient:
    def test_submit_status_results_roundtrip(
        self, pooled_server, tmp_path, capsys
    ):
        url, store_path = pooled_server
        suite_path = tmp_path / "suite.json"
        suite_path.write_text(json.dumps(SUITE), encoding="utf-8")

        assert main(["submit", str(suite_path), "--url", url]) == 0
        out = capsys.readouterr().out
        assert "campaign 'svc-campaign' created" in out
        assert "(queued)" in out

        assert main(["submit", str(suite_path), "--url", url]) == 0
        assert "already exists" in capsys.readouterr().out

        assert main(
            [
                "status", "svc-campaign", "--url", url,
                "--wait", "--interval", "0.2", "--timeout", "300",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "state         : complete" in out and "(100%)" in out

        # --json output of the client is the status document itself.
        assert main(["status", "svc-campaign", "--url", url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["state"] == "complete"

        # results --all --json is byte-identical to a local store export
        # over the same warehouse.
        assert main(["results", "--url", url, "--all", "--json"]) == 0
        api_rows = capsys.readouterr().out
        assert main(
            [
                "store", "export", "--store", str(store_path),
                "-o", "-", "--format", "json",
            ]
        ) == 0
        assert api_rows == capsys.readouterr().out

        # Aggregation happens client-side over the fetched rows.
        assert main(
            ["results", "--url", url, "--all", "--group-by", "tracker"]
        ) == 0
        out = capsys.readouterr().out
        assert "dapper-h" in out and "runs" in out

        # A bounded page advertises the next cursor on stderr.
        assert main(["results", "--url", url, "--limit", "1"]) == 0
        captured = capsys.readouterr()
        assert "--offset 1" in captured.err

    def test_submit_validation_error_exits_2(self, pooled_server, tmp_path, capsys):
        url, _ = pooled_server
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"scenarios": "wrong"}), encoding="utf-8")
        assert main(["submit", str(bad), "--url", url]) == 2
        assert "scenarios" in capsys.readouterr().err

    def test_unreachable_service_exits_1(self, capsys):
        assert main(
            ["status", "x", "--url", "http://127.0.0.1:1", "--timeout", "1"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestServeCli:
    def test_serve_smoke_and_sigterm_shutdown(self, tmp_path):
        import os
        import re
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--store", str(tmp_path / "wh.sqlite"),
                "--port", "0", "--workers", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            url = match.group(0)
            with urllib.request.urlopen(
                f"{url}/api/v1/health", timeout=10
            ) as response:
                assert json.loads(response.read()) == {"status": "ok"}
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
