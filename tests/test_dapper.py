"""Unit tests for the DAPPER-S and DAPPER-H trackers (the paper's contribution)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import baseline_config, reduced_row_config
from repro.core.bitvector import PerBankBitVector
from repro.core.dapper_h import DapperHTracker
from repro.core.dapper_s import DapperSTracker
from repro.core.rgc import RowGroupCounterTable
from repro.dram.address import BankAddress, RowAddress


def _row(row=1000, bank=0, bank_group=0, rank=0, channel=0):
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


@pytest.fixture
def config():
    return reduced_row_config(nrh=500, rows_per_bank=2048)


class TestRowGroupCounterTable:
    def test_group_mapping_is_consistent(self):
        table = RowGroupCounterTable(rank_row_bits=12, group_size=16, seed=1)
        for row in range(0, 4096, 97):
            assert table.group_of(row) == table.group_of(row)

    def test_groups_partition_the_row_space(self):
        table = RowGroupCounterTable(rank_row_bits=10, group_size=16, seed=1)
        assignment = {}
        for row in range(1024):
            assignment.setdefault(table.group_of(row), []).append(row)
        assert len(assignment) == table.num_groups
        assert all(len(members) == 16 for members in assignment.values())

    def test_members_inverts_group_of(self):
        table = RowGroupCounterTable(rank_row_bits=12, group_size=32, seed=5)
        group = table.group_of(777)
        members = table.members(group)
        assert 777 in members
        assert len(members) == 32
        assert all(table.group_of(member) == group for member in members)

    def test_rekey_changes_grouping_and_clears_cache(self):
        table = RowGroupCounterTable(rank_row_bits=12, group_size=32, seed=5)
        before = [table.group_of(row) for row in range(200)]
        table.members(0)
        table.rekey()
        after = [table.group_of(row) for row in range(200)]
        assert before != after
        assert all(table.group_of(m) == 0 for m in table.members(0))

    def test_counter_operations(self):
        table = RowGroupCounterTable(rank_row_bits=10, group_size=16, seed=1)
        assert table.increment(3) == 1
        table.set_count(3, 7)
        assert table.count(3) == 7
        table.reset_all()
        assert table.count(3) == 0

    def test_counter_saturates(self):
        table = RowGroupCounterTable(rank_row_bits=10, group_size=16, seed=1, counter_bits=8)
        for _ in range(300):
            table.increment(0)
        assert table.count(0) == 255

    def test_group_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            RowGroupCounterTable(rank_row_bits=10, group_size=24, seed=1)

    def test_storage_bytes(self):
        table = RowGroupCounterTable(rank_row_bits=21, group_size=256, seed=1)
        assert table.storage_bytes == 8192          # 8K one-byte counters

    @settings(max_examples=50, deadline=None)
    @given(row=st.integers(0, (1 << 14) - 1), seed=st.integers(0, 10_000))
    def test_membership_property(self, row, seed):
        table = RowGroupCounterTable(rank_row_bits=14, group_size=64, seed=seed)
        group = table.group_of(row)
        assert row in table.members(group)


class TestPerBankBitVector:
    def test_first_observation_does_not_count(self):
        bv = PerBankBitVector(num_entries=8, num_banks=4)
        assert bv.observe(0, 1) is False
        assert bv.observe(0, 1) is True

    def test_counting_clears_other_banks(self):
        bv = PerBankBitVector(num_entries=8, num_banks=4)
        bv.observe(0, 1)
        bv.observe(0, 2)
        assert bv.observe(0, 1) is True
        assert bv.bits(0) == 1 << 1

    def test_entries_are_independent(self):
        bv = PerBankBitVector(num_entries=4, num_banks=4)
        bv.observe(0, 0)
        assert bv.observe(1, 0) is False

    def test_clear_and_reset(self):
        bv = PerBankBitVector(num_entries=4, num_banks=4)
        bv.observe(2, 3)
        bv.clear_entry(2)
        assert bv.bits(2) == 0
        bv.observe(2, 3)
        bv.reset_all()
        assert bv.bits(2) == 0

    def test_bounds_checked(self):
        bv = PerBankBitVector(num_entries=4, num_banks=4)
        with pytest.raises(ValueError):
            bv.observe(0, 4)

    def test_storage(self):
        bv = PerBankBitVector(num_entries=8192, num_banks=32)
        assert bv.storage_bytes == 32 * 1024


class TestDapperS:
    def test_benign_activations_do_not_mitigate(self, config):
        tracker = DapperSTracker(config)
        for i in range(200):
            assert tracker.on_activation(_row(row=i), 0.0).is_empty

    def test_hammered_row_triggers_group_mitigation(self, config):
        tracker = DapperSTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        responses = [tracker.on_activation(_row(row=42), 0.0) for _ in range(threshold)]
        group_mitigations = [r for r in responses if r.group_mitigations]
        assert len(group_mitigations) == 1
        mitigation = group_mitigations[0].group_mitigations[0]
        assert mitigation.num_rows == tracker.group_size
        # The hammered row itself must be covered by the bulk refresh.
        rank_row = _row(row=42).rank_row_index(config.dram)
        assert mitigation.covers(rank_row)

    def test_counter_resets_after_mitigation(self, config):
        tracker = DapperSTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        row = _row(row=42)
        for _ in range(threshold):
            tracker.on_activation(row, 0.0)
        group = tracker.group_of(row)
        assert tracker.group_count(0, 0, group) == 0

    def test_rekey_on_refresh_window(self, config):
        tracker = DapperSTracker(config)
        row = _row(row=42)
        before = tracker.group_of(row)
        tracker.on_activation(row, 0.0)
        tracker.on_refresh_window(1, 0.0)
        # Counters cleared and (very likely) the mapping changed.
        assert tracker.group_count(0, 0, before) == 0

    def test_short_reset_period(self, config):
        tracker = DapperSTracker(config, reset_period_ns=12_000.0)
        row = _row(row=42)
        tracker.on_activation(row, 0.0)
        tracker.on_activation(row, 20_000.0)       # past the reset period
        assert tracker.stats.periodic_resets >= 1

    def test_storage_is_16kb_per_channel_at_baseline_geometry(self):
        tracker = DapperSTracker(baseline_config(nrh=500))
        assert tracker.storage_report().sram_kb == pytest.approx(16.0)

    def test_different_ranks_tracked_independently(self, config):
        tracker = DapperSTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        for _ in range(threshold - 1):
            tracker.on_activation(_row(row=42, rank=0), 0.0)
        response = tracker.on_activation(_row(row=42, rank=1), 0.0)
        assert response.is_empty


class TestDapperH:
    def test_benign_activations_do_not_mitigate(self, config):
        tracker = DapperHTracker(config)
        for i in range(500):
            assert tracker.on_activation(_row(row=i % 64, bank=i % 4), 0.0).is_empty

    def test_hammered_row_is_refreshed_at_threshold(self, config):
        tracker = DapperHTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        row = _row(row=42)
        mitigated_rows = []
        for _ in range(threshold + 2):
            response = tracker.on_activation(row, 0.0)
            mitigated_rows.extend(response.mitigations)
        assert mitigated_rows
        assert any(m.row == 42 and m.bank == row.bank for m in mitigated_rows)

    def test_mitigation_refreshes_only_shared_rows(self):
        # With the full 2M-row rank the expected overlap between two random
        # 256-row groups is ~0.03 rows, so nearly every mitigation refreshes
        # just the hammered row (the paper reports 99.9%).
        tracker = DapperHTracker(baseline_config(nrh=500))
        threshold = baseline_config().rowhammer.mitigation_threshold
        row = _row(row=42)
        for _ in range(threshold + 2):
            tracker.on_activation(row, 0.0)
        assert tracker.single_row_mitigation_fraction() >= 0.9
        assert sum(tracker.shared_row_histogram.values()) >= 1

    def test_bitvector_filters_streaming_single_touch(self, config):
        """Touching many rows once each (across banks) must not mitigate."""
        tracker = DapperHTracker(config)
        org = config.dram
        for row in range(0, org.rows_per_bank, 7):
            for bank in range(4):
                response = tracker.on_activation(_row(row=row, bank=bank), 0.0)
                assert not response.mitigations

    def test_double_hash_requires_both_tables(self, config):
        """Table 2 alone reaching the threshold must not trigger mitigation."""
        tracker = DapperHTracker(config, use_bitvector=True)
        org = config.dram
        row = _row(row=42, bank=0)
        group1, group2 = tracker.groups_of(row)
        state = tracker._rank_state(0, 0)
        # Drive table 2 up without table 1 (single touches from fresh banks).
        state.table2.set_count(group2, config.rowhammer.mitigation_threshold)
        response = tracker.on_activation(row, 0.0)
        assert not response.mitigations    # table 1 still far below threshold

    def test_reset_counters_prevent_zero_reset(self, config):
        tracker = DapperHTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        row = _row(row=42)
        for _ in range(threshold + 2):
            tracker.on_activation(row, 0.0)
        group1, group2 = tracker.groups_of(row)
        state = tracker._rank_state(0, 0)
        assert state.table1.count(group1) < threshold
        assert state.table2.count(group2) < threshold

    def test_refresh_window_rekeys_both_tables(self, config):
        tracker = DapperHTracker(config)
        row = _row(row=42)
        before = tracker.groups_of(row)
        tracker.on_refresh_window(1, 0.0)
        state = tracker._rank_state(0, 0)
        assert state.table1.count(before[0]) == 0
        assert state.table2.count(before[1]) == 0

    def test_storage_is_96kb_per_channel_at_baseline_geometry(self):
        tracker = DapperHTracker(baseline_config(nrh=500))
        assert tracker.storage_report().sram_kb == pytest.approx(96.0)

    def test_ablation_flags(self, config):
        no_bv = DapperHTracker(config, use_bitvector=False)
        assert no_bv.use_bitvector is False
        no_reset = DapperHTracker(config, use_reset_counters=False)
        assert no_reset.use_reset_counters is False

    def test_groups_of_exposes_both_mappings(self, config):
        tracker = DapperHTracker(config)
        group1, group2 = tracker.groups_of(_row(row=7))
        state = tracker._rank_state(0, 0)
        assert 0 <= group1 < state.table1.num_groups
        assert 0 <= group2 < state.table2.num_groups
