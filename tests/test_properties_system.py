"""Cross-module property-based tests (hypothesis).

The per-module test files already check the targeted properties of each data
structure; this module checks *system-level* invariants that must hold for
arbitrary request streams:

* DRAM timing never goes backwards and never starts a request before it was
  issued;
* the memory controller keeps every tracker's statistics consistent with the
  stream it serviced;
* the DAPPER trackers never let a hammered row's true activation count cross
  the RowHammer threshold, whatever the (randomised) hammering pattern;
* the BreakHammer shim is observationally transparent: it forwards the inner
  tracker's responses unchanged;
* the paced probabilistic trackers (PrIDE, MINT) issue exactly one mitigation
  per pacing window per bank.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.security import GroundTruthAuditor
from repro.cache.llc import SharedLLC
from repro.config import baseline_config, reduced_row_config
from repro.dram.address import AddressMapper, BankAddress, RowAddress
from repro.dram.dram_system import DRAMSystem
from repro.mc.controller import MemoryController
from repro.trackers.mint import MintTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.registry import create_tracker
from repro.trackers.throttling import BreakHammerShim


def _config():
    return baseline_config(nrh=500)


def _small_config(nrh=200):
    return reduced_row_config(nrh=nrh, rows_per_bank=512)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

def _coordinate_strategy(org):
    return st.tuples(
        st.integers(0, org.channels - 1),
        st.integers(0, org.ranks_per_channel - 1),
        st.integers(0, org.bank_groups_per_rank - 1),
        st.integers(0, org.banks_per_group - 1),
        st.integers(0, org.rows_per_bank - 1),
    )


def _row_address(coords) -> RowAddress:
    channel, rank, bank_group, bank, row = coords
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


# --------------------------------------------------------------------------- #
# DRAM timing invariants
# --------------------------------------------------------------------------- #

class TestDRAMTimingProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1),          # channel
                st.integers(0, 1),          # rank
                st.integers(0, 7),          # bank group
                st.integers(0, 3),          # bank
                st.integers(0, 1000),       # row
                st.booleans(),              # is_write
                st.floats(0.0, 200.0),      # issue gap in ns
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_completions_never_precede_issue_and_stats_add_up(self, requests):
        config = _config()
        dram = DRAMSystem(config)
        mapper = AddressMapper(config.dram)
        now = 0.0
        reads = writes = 0
        for channel, rank, bank_group, bank, row, is_write, gap in requests:
            now += gap
            address = mapper.encode(channel, rank, bank_group, bank, row)
            result = dram.access(mapper.decode(address), is_write, now)
            assert result.start_ns >= now
            assert result.completion_ns >= result.start_ns
            reads += not is_write
            writes += is_write
        assert dram.stats.reads == reads
        assert dram.stats.writes == writes
        assert (
            dram.stats.row_hits + dram.stats.row_misses + dram.stats.row_conflicts
            == len(requests)
        )

    @given(
        st.lists(st.integers(0, 63), min_size=2, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_bank_activations_are_serialised_by_trc(self, rows):
        """Back-to-back activations of one bank complete at least tRC apart."""
        config = _config()
        dram = DRAMSystem(config)
        mapper = AddressMapper(config.dram)
        last_activation_completion = None
        now = 0.0
        for row in rows:
            result = dram.access(
                mapper.decode(mapper.encode(0, 0, 0, 0, row)), False, now
            )
            if result.activated:
                if last_activation_completion is not None:
                    assert (
                        result.completion_ns - last_activation_completion
                        >= config.timings.trc_ns - 1e-6
                    )
                last_activation_completion = result.completion_ns
            now = result.completion_ns


# --------------------------------------------------------------------------- #
# Memory-controller invariants
# --------------------------------------------------------------------------- #

class TestControllerProperties:
    @given(
        st.sampled_from(["dapper-h", "dapper-s", "graphene", "para", "none"]),
        st.lists(
            st.tuples(
                st.integers(0, 511),        # row
                st.integers(0, 7),          # rank-local bank
                st.booleans(),              # is_write
            ),
            min_size=1,
            max_size=120,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_time_is_monotonic_and_request_stats_match(self, tracker_name, stream):
        config = _small_config()
        mapper = AddressMapper(config.dram)
        tracker = create_tracker(tracker_name, config)
        controller = MemoryController(config, DRAMSystem(config), tracker, mapper)
        now = 0.0
        for row, bank_local, is_write in stream:
            bank_group = bank_local // config.dram.banks_per_group
            bank = bank_local % config.dram.banks_per_group
            address = mapper.encode(0, 0, bank_group, bank, row)
            completed = controller.service(address, is_write, now, core_id=0)
            assert completed >= now
            now = completed
        assert controller.stats.requests == len(stream)
        assert (
            controller.stats.read_requests + controller.stats.write_requests
            == len(stream)
        )
        assert tracker.stats.activations_observed <= len(stream)


# --------------------------------------------------------------------------- #
# DAPPER security invariant under randomised hammering
# --------------------------------------------------------------------------- #

class TestDapperSecurityProperty:
    @given(
        st.sampled_from(["dapper-h", "dapper-s"]),
        st.lists(st.integers(0, 15), min_size=1, max_size=4),   # hammered rows
        st.integers(0, 3),                                       # banks used
        st.integers(0, 2**31 - 1),                               # pattern seed
    )
    @settings(max_examples=15, deadline=None)
    def test_no_row_crosses_the_threshold(self, tracker_name, rows, banks, seed):
        """Randomised hammering never drives a row past NRH under DAPPER."""
        config = _small_config(nrh=200)
        mapper = AddressMapper(config.dram)
        tracker = create_tracker(tracker_name, config)
        auditor = GroundTruthAuditor(config)
        controller = MemoryController(
            config, DRAMSystem(config), tracker, mapper, auditor=auditor
        )
        import random

        rng = random.Random(seed)
        hammer_targets = [
            (row * 17 % config.dram.rows_per_bank, bank)
            for row in rows
            for bank in range(banks + 1)
        ]
        now = 0.0
        for _ in range(4_000):
            row, bank_local = rng.choice(hammer_targets)
            bank_group = bank_local // config.dram.banks_per_group
            bank = bank_local % config.dram.banks_per_group
            address = mapper.encode(0, 0, bank_group, bank, row)
            now = controller.service(address, False, now, core_id=0)
        report = auditor.report()
        assert report.is_secure, (
            f"{tracker_name} allowed count {report.max_count} > {report.nrh}"
        )


# --------------------------------------------------------------------------- #
# BreakHammer shim transparency
# --------------------------------------------------------------------------- #

class TestBreakHammerTransparency:
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 7)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_responses_match_the_inner_tracker(self, stream):
        config = _small_config()
        bare = create_tracker("dapper-h", config)
        shimmed = BreakHammerShim(config, create_tracker("dapper-h", config))
        for row, bank_local in stream:
            bank_group = bank_local // config.dram.banks_per_group
            bank = bank_local % config.dram.banks_per_group
            addr = RowAddress(BankAddress(0, 0, bank_group, bank), row)
            shimmed.note_request_source(0)
            assert bare.on_activation(addr, 0.0) == shimmed.on_activation(addr, 0.0)


# --------------------------------------------------------------------------- #
# Pacing invariants of the sampled probabilistic trackers
# --------------------------------------------------------------------------- #

class TestPacingProperties:
    @given(
        st.sampled_from([MintTracker, PrideTracker]),
        st.lists(st.integers(0, 31), min_size=1, max_size=600),
    )
    @settings(max_examples=30, deadline=None)
    def test_one_mitigation_per_window_per_bank(self, tracker_cls, rows):
        config = _config()
        tracker = tracker_cls(config)
        per_bank = {}
        mitigations = 0
        for row in rows:
            bank_local = row % 8
            bank_group = bank_local // config.dram.banks_per_group
            bank = bank_local % config.dram.banks_per_group
            addr = RowAddress(BankAddress(0, 0, bank_group, bank), row)
            flat = addr.bank.flat(config.dram)
            per_bank[flat] = per_bank.get(flat, 0) + 1
            mitigations += len(tracker.on_activation(addr, 0.0).mitigations)
        expected = sum(
            count // tracker.activations_per_mitigation
            for count in per_bank.values()
        )
        assert mitigations == expected


# --------------------------------------------------------------------------- #
# Shared LLC invariants
# --------------------------------------------------------------------------- #

class TestLLCProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**20 - 1), st.booleans(), st.integers(0, 3)),
            min_size=1,
            max_size=400,
        ),
        st.integers(0, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_and_stats_stay_consistent(self, accesses, reserved_ways):
        config = _config()
        llc = SharedLLC(config.llc)
        if reserved_ways:
            llc.reserve_ways(reserved_ways)
        for address, is_write, core in accesses:
            result = llc.access(address * 64, is_write, core_id=core)
            assert result.hit in (True, False)
        assert llc.stats.accesses == len(accesses)
        assert 0.0 <= llc.occupancy() <= 1.0
        assert llc.data_ways == config.llc.ways - reserved_ways
