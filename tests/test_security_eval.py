"""Integration tests: every tracker must actually prevent RowHammer.

These tests drive real attack kernels through the memory controller with the
ground-truth auditor attached (see :mod:`repro.analysis.security_eval`) and
check the property the whole paper presumes: trackers keep every row's true
activation count below the RowHammer threshold, whatever the access pattern.
"""

import pytest

from repro.analysis.security_eval import (
    DETERMINISTIC_TRACKERS,
    SecurityScenario,
    evaluate_tracker_security,
    format_security_table,
    security_sweep,
)
from repro.config import baseline_config


@pytest.fixture(scope="module")
def config():
    return baseline_config(nrh=500)


class TestUnprotectedBaseline:
    def test_double_sided_hammering_breaks_an_unprotected_system(self, config):
        scenario = evaluate_tracker_security(
            "none", "rowhammer", config=config, activations=6_000
        )
        assert not scenario.is_secure
        assert scenario.max_count > config.rowhammer.nrh
        assert scenario.mitigations_issued == 0

    def test_many_sided_hammering_breaks_an_unprotected_system(self, config):
        scenario = evaluate_tracker_security(
            "none", "many-sided-rowhammer", config=config, activations=20_000
        )
        assert not scenario.is_secure


class TestTrackedSystems:
    @pytest.mark.parametrize("tracker", DETERMINISTIC_TRACKERS)
    def test_double_sided_hammering_is_contained(self, config, tracker):
        scenario = evaluate_tracker_security(
            tracker, "rowhammer", config=config, activations=8_000
        )
        assert scenario.is_secure, f"{tracker} let a row reach {scenario.max_count}"
        assert scenario.max_count <= config.rowhammer.nrh

    @pytest.mark.parametrize("tracker", ["dapper-s", "dapper-h", "graphene"])
    def test_many_sided_hammering_is_contained(self, config, tracker):
        scenario = evaluate_tracker_security(
            tracker, "many-sided-rowhammer", config=config, activations=12_000
        )
        assert scenario.is_secure

    def test_dapper_h_mitigates_rather_than_relying_on_luck(self, config):
        scenario = evaluate_tracker_security(
            "dapper-h", "rowhammer", config=config, activations=8_000
        )
        assert scenario.mitigations_issued > 0

    def test_breakhammer_composition_preserves_security(self, config):
        scenario = evaluate_tracker_security(
            "breakhammer:dapper-h", "rowhammer", config=config, activations=8_000
        )
        assert scenario.is_secure

    def test_blockhammer_throttling_keeps_rows_below_threshold(self, config):
        scenario = evaluate_tracker_security(
            "blockhammer", "rowhammer", config=config, activations=8_000
        )
        # BlockHammer never refreshes victims; its security comes from delaying
        # the aggressors past the refresh window.
        assert scenario.mitigations_issued == 0
        assert scenario.is_secure


class TestSweepAndReporting:
    def test_sweep_covers_every_combination(self, config):
        scenarios = security_sweep(
            trackers=("dapper-h", "graphene"),
            attacks=("rowhammer", "many-sided-rowhammer"),
            config=config,
            activations=4_000,
        )
        assert len(scenarios) == 4
        assert {s.tracker for s in scenarios} == {"dapper-h", "graphene"}
        assert all(isinstance(s, SecurityScenario) for s in scenarios)

    def test_format_security_table_mentions_every_row(self, config):
        scenarios = security_sweep(
            trackers=("dapper-h",),
            attacks=("rowhammer",),
            config=config,
            activations=2_000,
        )
        text = format_security_table(scenarios)
        assert "dapper-h" in text
        assert "rowhammer" in text
        assert "secure" in text

    def test_scenario_fraction_property(self):
        scenario = SecurityScenario(
            tracker="x",
            attack="y",
            nrh=500,
            activations=10,
            max_count=250,
            violations=0,
            mitigations_issued=1,
        )
        assert scenario.max_count_fraction_of_nrh == pytest.approx(0.5)
        assert scenario.is_secure
