"""Scenario-catalog tests: suite round-trips, cache-key stability, errors.

The catalog's contract is that a suite file is *data*: loading it twice, in
any process, must compile to the same :class:`ScenarioSpec` list with the
same cache keys (otherwise the on-disk sweep cache would silently fracture),
and every malformed input must surface as a ``ValueError`` naming the
offending entry rather than a traceback from deep inside the simulator.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    available_families,
    family_by_name,
    load_suite,
    parse_suite_text,
)
from repro.sim.sweep import CoreAssignment, ScenarioSpec, SweepRunner

YAML_SUITE = """
suite: roundtrip
defaults:
  nrh: 500
  requests_per_core: 700
  geometry: reduced
scenarios:
  - family: multi-attacker
    params:
      tracker: dapper-h
      attackers:
        - blind-random-rows
        - { attack: row-streaming, hammer_rate: 0.5 }
      workloads:
        - { workload: 429.mcf, intensity: 1.5 }
        - 470.lbm
  - family: attacker-count-sweep
    params:
      tracker: dapper-h
      attack: refresh
      counts: [0, 2]
      workloads: [433.milc]
  - family: fuzz
    params: { count: 3, seed: 11 }
"""

#: The same suite expressed as JSON (the YAML-less fallback format).
JSON_SUITE = json.dumps(
    {
        "suite": "roundtrip",
        "defaults": {"nrh": 500, "requests_per_core": 700, "geometry": "reduced"},
        "scenarios": [
            {
                "family": "multi-attacker",
                "params": {
                    "tracker": "dapper-h",
                    "attackers": [
                        "blind-random-rows",
                        {"attack": "row-streaming", "hammer_rate": 0.5},
                    ],
                    "workloads": [
                        {"workload": "429.mcf", "intensity": 1.5},
                        "470.lbm",
                    ],
                },
            },
            {
                "family": "attacker-count-sweep",
                "params": {
                    "tracker": "dapper-h",
                    "attack": "refresh",
                    "counts": [0, 2],
                    "workloads": ["433.milc"],
                },
            },
            {"family": "fuzz", "params": {"count": 3, "seed": 11}},
        ],
    }
)


def _keys(specs: list[ScenarioSpec]) -> list[str]:
    return [spec.cache_key() for spec in specs]


class TestSuiteRoundTrip:
    def test_yaml_suite_compiles(self):
        specs = parse_suite_text(YAML_SUITE).compile()
        # 1 multi-attacker + 2 counts + 3 fuzz scenarios.
        assert len(specs) == 6
        assert all(isinstance(spec, ScenarioSpec) for spec in specs)

    def test_cache_keys_stable_across_loads(self):
        first = parse_suite_text(YAML_SUITE).compile()
        second = parse_suite_text(YAML_SUITE).compile()
        assert _keys(first) == _keys(second)

    def test_yaml_and_json_forms_share_cache_keys(self):
        from_yaml = parse_suite_text(YAML_SUITE, format="yaml").compile()
        from_json = parse_suite_text(JSON_SUITE, format="json").compile()
        assert _keys(from_yaml) == _keys(from_json)

    def test_load_suite_from_disk(self, tmp_path):
        path = tmp_path / "suite.yaml"
        path.write_text(YAML_SUITE, encoding="utf-8")
        suite = load_suite(path)
        assert suite.name == "roundtrip"
        assert _keys(suite.compile()) == _keys(parse_suite_text(YAML_SUITE).compile())

    def test_defaults_apply_only_declared_parameters(self):
        # `geometry` is not a paper-family knob; a shared default must not
        # break the entry.
        suite = parse_suite_text(
            """
            defaults: {geometry: reduced, requests_per_core: 600}
            scenarios:
              - family: paper-figure11
                params: {workloads: [429.mcf]}
            """
        )
        specs = suite.compile()
        assert len(specs) == 1
        assert specs[0].requests_per_core == 600

    def test_multi_attacker_plan_shape(self):
        spec = parse_suite_text(YAML_SUITE).compile()[0]
        assert spec.core_plan is not None
        roles = [assignment.role for assignment in spec.core_plan]
        assert roles == ["attack", "attack", "workload", "workload"]
        assert spec.core_plan[1].hammer_rate == 0.5
        assert spec.core_plan[2].intensity == 1.5


class TestFuzzDeterminism:
    def test_same_seed_same_scenarios(self):
        fuzz = family_by_name("fuzz")
        first = fuzz.expand({"count": 5, "seed": 42})
        second = fuzz.expand({"count": 5, "seed": 42})
        assert _keys(first) == _keys(second)

    def test_different_seed_different_scenarios(self):
        fuzz = family_by_name("fuzz")
        a = family_by_name("fuzz").expand({"count": 5, "seed": 1})
        b = fuzz.expand({"count": 5, "seed": 2})
        assert _keys(a) != _keys(b)


class TestErrorPaths:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            parse_suite_text("scenarios: [{family: nope}]").compile()

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="does not take parameter"):
            family_by_name("single").expand(
                {"tracker": "dapper-h", "workload": "429.mcf", "frobnicate": 1}
            )

    def test_missing_required_parameter(self):
        with pytest.raises(ValueError, match="requires parameter"):
            family_by_name("single").expand({"workload": "429.mcf"})

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            family_by_name("single").expand(
                {"tracker": "dapper-h", "workload": "bogus"}
            )

    def test_unknown_attack(self):
        with pytest.raises(ValueError, match="unknown attack"):
            family_by_name("multi-attacker").expand(
                {
                    "tracker": "dapper-h",
                    "attackers": ["no-such-attack"],
                    "workloads": ["429.mcf"],
                }
            )

    def test_unknown_tracker(self):
        with pytest.raises(ValueError):
            family_by_name("single").expand(
                {"tracker": "no-such-tracker", "workload": "429.mcf"}
            )

    def test_too_many_attackers(self):
        with pytest.raises(ValueError, match="no benign core"):
            family_by_name("multi-attacker").expand(
                {
                    "tracker": "none",
                    "attackers": [{"attack": "refresh", "cores": 4}],
                    "workloads": ["429.mcf"],
                }
            )

    def test_bad_hammer_rate(self):
        with pytest.raises(ValueError, match="hammer_rate"):
            family_by_name("multi-attacker").expand(
                {
                    "tracker": "none",
                    "attackers": [{"attack": "refresh", "hammer_rate": 2.0}],
                    "workloads": ["429.mcf"],
                }
            )

    def test_malformed_suite_document(self):
        with pytest.raises(ValueError, match="non-empty list"):
            parse_suite_text("suite: empty")
        with pytest.raises(ValueError, match="unknown top-level keys"):
            parse_suite_text("scenarioz: []")
        with pytest.raises(ValueError, match="invalid JSON"):
            parse_suite_text("{", format="json")

    def test_available_families_lists_builtins(self):
        names = available_families()
        for expected in ("single", "multi-attacker", "fuzz", "paper-figure3"):
            assert expected in names


class TestPlanSpecSemantics:
    def test_plan_and_attack_mutually_exclusive(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="workload", name="429.mcf"),
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScenarioSpec(
                tracker="none", workload="429.mcf", attack="refresh", core_plan=plan
            )

    def test_benign_plan_canonicalises_warmup(self):
        plan = (CoreAssignment(role="workload", name="429.mcf"),)
        spec = ScenarioSpec(
            tracker="none",
            workload="429.mcf",
            core_plan=plan,
            attack_warmup_activations=9999,
        )
        assert spec.attack_warmup_activations == 0

    def test_baseline_replaces_attackers_with_idle(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="workload", name="429.mcf"),
        )
        spec = ScenarioSpec(tracker="dapper-h", workload="429.mcf", core_plan=plan)
        baseline = spec.baseline_spec()
        assert baseline.tracker == "none"
        assert [a.role for a in baseline.core_plan] == ["idle", "workload"]

    def test_attack_matched_baseline_keeps_attackers(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="workload", name="429.mcf"),
        )
        spec = ScenarioSpec(
            tracker="dapper-h",
            workload="429.mcf",
            core_plan=plan,
            attack_matched_baseline=True,
        )
        baseline = spec.baseline_spec()
        assert [a.role for a in baseline.core_plan] == ["attack", "workload"]

    def test_plan_changes_cache_key(self):
        base = ScenarioSpec(tracker="none", workload="429.mcf")
        planned = ScenarioSpec(
            tracker="none",
            workload="429.mcf",
            core_plan=(
                CoreAssignment(role="workload", name="429.mcf"),
                CoreAssignment(role="workload", name="470.lbm"),
            ),
        )
        assert base.cache_key() != planned.cache_key()

    def test_bad_parameter_type_reported_as_value_error(self):
        # Builders coerce with float()/int(); a list where a number belongs
        # must still honour the ValueError error contract.
        with pytest.raises(ValueError, match="bad parameter value"):
            family_by_name("multi-attacker").expand(
                {
                    "tracker": "none",
                    "attackers": [{"attack": "refresh", "hammer_rate": [1, 2]}],
                    "workloads": ["429.mcf"],
                }
            )


class TestHammerRate:
    def test_throttle_preserves_fractional_rates(self):
        """Sub-integer stretches (e.g. rate 0.75) must not round away."""
        from repro.cpu.trace import TraceEntry
        from repro.sim.experiment import ThrottledGenerator

        class Ones:
            bypasses_llc = True

            def next_entry(self):
                return TraceEntry(gap_instructions=1, address=0, is_write=False)

        for rate in (0.75, 0.5, 0.25):
            throttled = ThrottledGenerator(Ones(), rate)
            total = sum(
                throttled.next_entry().gap_instructions for _ in range(600)
            )
            assert total / 600 == pytest.approx(1.0 / rate, rel=0.01)

    def test_label_does_not_affect_plan_cache_key(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="workload", name="429.mcf"),
        )
        a = ScenarioSpec(tracker="none", workload="429.mcf", core_plan=plan)
        b = ScenarioSpec(tracker="none", workload="470.lbm", core_plan=plan)
        assert a.cache_key() == b.cache_key()


@pytest.fixture(scope="module")
def plan_specs():
    """A small multi-attacker + mixed-blend batch (reduced geometry)."""
    return parse_suite_text(
        """
        defaults: {requests_per_core: 400, geometry: reduced}
        scenarios:
          - family: multi-attacker
            params:
              tracker: dapper-h
              attackers: [blind-random-rows, {attack: refresh, hammer_rate: 0.5}]
              workloads: [{workload: 429.mcf, intensity: 0.5}, 470.lbm]
          - family: workload-blend
            params:
              workloads: [429.mcf, {workload: 470.lbm, cores: 2}]
        """
    ).compile()


def _fingerprint(outcomes):
    return [
        (
            outcome.normalized,
            tuple(core.ipc for core in outcome.result.core_results),
            tuple(core.ipc for core in outcome.baseline.core_results),
        )
        for outcome in outcomes
    ]


class TestPlanExecutionDeterminism:
    """Serial == pooled == cache-replayed, for catalog-shaped scenarios."""

    def test_serial_pool_and_cache_agree(self, plan_specs, tmp_path):
        cache_dir = tmp_path / "cache"
        serial = SweepRunner(cache_dir=cache_dir, jobs=1).run(plan_specs)
        pooled = SweepRunner(jobs=2).run(plan_specs)
        replayed_runner = SweepRunner(cache_dir=cache_dir, jobs=1)
        replayed = replayed_runner.run(plan_specs)
        assert _fingerprint(serial) == _fingerprint(pooled)
        assert _fingerprint(serial) == _fingerprint(replayed)
        # The replay must actually have come from the on-disk cache.
        assert replayed_runner.stats.cache_misses == 0
        assert all(outcome.from_cache for outcome in replayed)

    def test_attackers_flagged_and_baseline_idle(self, plan_specs):
        outcome = SweepRunner().run_one(plan_specs[0])
        attacker_ids = [
            core.core_id
            for core in outcome.result.core_results
            if core.is_attacker
        ]
        assert attacker_ids == [0, 1]
        # Baseline replaced the attackers with idle cores: only the benign
        # cores produce results, on unchanged core ids.
        assert [core.core_id for core in outcome.baseline.core_results] == [2, 3]
        assert 0.0 < outcome.normalized <= 1.5
