"""Unit tests for the knowledge-free attack kernels (paper Section III-E)."""

import pytest

from repro.attacks import attack_by_name
from repro.attacks.blind import (
    ManySidedRowHammerAttack,
    RandomRowCapacityAttack,
    ResetProbeAttack,
)
from repro.config import baseline_config
from repro.dram.address import AddressMapper


@pytest.fixture
def config():
    return baseline_config(nrh=500)


@pytest.fixture
def mapper(config):
    return AddressMapper(config.dram)


class TestRandomRowCapacityAttack:
    def test_generates_requested_number_of_distinct_rows(self, config, mapper):
        attack = RandomRowCapacityAttack(config.dram, mapper, num_rows=512)
        assert attack.distinct_rows == 512
        targets = {attack.next_entry().address for _ in range(512)}
        assert len(targets) == 512

    def test_sequence_repeats_cyclically(self, config, mapper):
        attack = RandomRowCapacityAttack(config.dram, mapper, num_rows=64)
        first_pass = [attack.next_entry().address for _ in range(64)]
        second_pass = [attack.next_entry().address for _ in range(64)]
        assert first_pass == second_pass

    def test_targets_stay_within_the_requested_channel_and_banks(self, config, mapper):
        attack = RandomRowCapacityAttack(
            config.dram, mapper, num_rows=256, banks_used=8, channel=0
        )
        for _ in range(256):
            decoded = mapper.decode(attack.next_entry().address)
            assert decoded.channel == 0
            bank_index = (
                decoded.rank * config.dram.banks_per_rank
                + decoded.bank_group * config.dram.banks_per_group
                + decoded.bank
            )
            assert bank_index < 8

    def test_deterministic_for_a_given_seed(self, config, mapper):
        one = RandomRowCapacityAttack(config.dram, mapper, seed=5, num_rows=128)
        two = RandomRowCapacityAttack(config.dram, mapper, seed=5, num_rows=128)
        assert [one.next_entry().address for _ in range(64)] == [
            two.next_entry().address for _ in range(64)
        ]

    def test_different_seeds_give_different_working_sets(self, config, mapper):
        one = RandomRowCapacityAttack(config.dram, mapper, seed=1, num_rows=128)
        two = RandomRowCapacityAttack(config.dram, mapper, seed=2, num_rows=128)
        set_one = {one.next_entry().address for _ in range(128)}
        set_two = {two.next_entry().address for _ in range(128)}
        assert set_one != set_two


class TestResetProbeAttack:
    def test_escalates_geometrically_to_the_cap(self, config, mapper):
        attack = ResetProbeAttack(
            config.dram,
            mapper,
            initial_rows=32,
            max_rows=256,
            activations_per_episode=100,
        )
        seen_row_counts = {attack.current_rows}
        for _ in range(100 * 5 + 10):
            attack.next_entry()
            seen_row_counts.add(attack.current_rows)
        assert seen_row_counts == {32, 64, 128, 256}
        assert attack.current_rows == 256

    def test_stays_at_cap_after_probing(self, config, mapper):
        attack = ResetProbeAttack(
            config.dram,
            mapper,
            initial_rows=16,
            max_rows=64,
            activations_per_episode=50,
        )
        for _ in range(1_000):
            attack.next_entry()
        assert attack.current_rows == 64

    def test_distinct_rows_grow_with_escalation(self, config, mapper):
        attack = ResetProbeAttack(
            config.dram,
            mapper,
            initial_rows=32,
            max_rows=512,
            activations_per_episode=64,
            banks_used=16,
        )
        early = {attack.next_entry().address for _ in range(64)}
        for _ in range(64 * 8):
            attack.next_entry()
        late = {attack.next_entry().address for _ in range(512)}
        assert len(late) > len(early)

    def test_rejects_invalid_row_bounds(self, config, mapper):
        with pytest.raises(ValueError):
            ResetProbeAttack(config.dram, mapper, initial_rows=0)
        with pytest.raises(ValueError):
            ResetProbeAttack(config.dram, mapper, initial_rows=64, max_rows=32)


class TestManySidedRowHammerAttack:
    def test_hammers_the_declared_aggressors_only(self, config, mapper):
        attack = ManySidedRowHammerAttack(
            config.dram, mapper, base_row=1000, num_aggressors=6, banks_used=2
        )
        aggressors = set(attack.aggressor_rows)
        assert len(aggressors) == 6
        for _ in range(100):
            decoded = mapper.decode(attack.next_entry().address)
            assert decoded.row in aggressors

    def test_round_robins_across_banks(self, config, mapper):
        attack = ManySidedRowHammerAttack(
            config.dram, mapper, num_aggressors=2, banks_used=4
        )
        banks = [
            mapper.decode(attack.next_entry().address).bank_address
            for _ in range(8)
        ]
        assert len(set(banks)) == 4

    def test_spacing_controls_aggressor_layout(self, config, mapper):
        attack = ManySidedRowHammerAttack(
            config.dram, mapper, base_row=500, num_aggressors=4, spacing=3
        )
        assert attack.aggressor_rows == (500, 503, 506, 509)

    def test_rejects_zero_aggressors(self, config, mapper):
        with pytest.raises(ValueError):
            ManySidedRowHammerAttack(config.dram, mapper, num_aggressors=0)


class TestAttackFactory:
    def test_new_attacks_available_by_name(self, config, mapper):
        for name, cls in [
            ("blind-random-rows", RandomRowCapacityAttack),
            ("blind-reset-probe", ResetProbeAttack),
            ("many-sided-rowhammer", ManySidedRowHammerAttack),
        ]:
            attack = attack_by_name(name, config.dram, mapper)
            assert isinstance(attack, cls)
            assert attack.next_entry().address >= 0

    def test_unknown_attack_still_rejected(self, config, mapper):
        with pytest.raises(ValueError):
            attack_by_name("not-an-attack", config.dram, mapper)
