"""Tests for the system configuration objects."""

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    DRAMOrganization,
    DRAMTimings,
    MitigationCommand,
    RowHammerConfig,
    baseline_config,
    large_system_config,
    reduced_row_config,
)


class TestDRAMOrganization:
    def test_baseline_matches_table1(self):
        org = DRAMOrganization()
        assert org.channels == 2
        assert org.ranks_per_channel == 2
        assert org.bank_groups_per_rank == 8
        assert org.banks_per_group == 4
        assert org.rows_per_bank == 64 * 1024
        assert org.row_size_bytes == 8 * 1024

    def test_derived_bank_counts(self):
        org = DRAMOrganization()
        assert org.banks_per_rank == 32
        assert org.banks_per_channel == 64
        assert org.total_banks == 128

    def test_rows_per_rank_is_two_million(self):
        org = DRAMOrganization()
        assert org.rows_per_rank == 2 * 1024 * 1024

    def test_total_capacity_is_64_gb(self):
        org = DRAMOrganization()
        assert org.total_bytes == 64 * 1024 ** 3
        assert org.bytes_per_channel == 32 * 1024 ** 3

    def test_rank_row_bits(self):
        org = DRAMOrganization()
        assert org.rank_row_bits == 21

    def test_lines_per_row(self):
        org = DRAMOrganization()
        assert org.lines_per_row == 128


class TestTimings:
    def test_defaults_match_table1(self):
        t = DRAMTimings()
        assert t.trc_ns == 48.0
        assert t.trfc_ns == 295.0
        assert t.trefi_ns == 3900.0
        assert t.trefw_ns == 32_000_000.0

    def test_scaled_refresh_window(self):
        t = DRAMTimings().scaled_refresh_window(0.5)
        assert t.trefw_ns == 16_000_000.0
        # Other parameters are untouched.
        assert t.trc_ns == 48.0

    def test_timings_are_immutable(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DRAMTimings().trc_ns = 1.0


class TestRowHammerConfig:
    def test_mitigation_threshold_is_half_nrh(self):
        assert RowHammerConfig(nrh=500).mitigation_threshold == 250
        assert RowHammerConfig(nrh=125).mitigation_threshold == 62

    def test_default_command_is_vrr(self):
        assert RowHammerConfig().mitigation_command is MitigationCommand.VRR


class TestSystemConfig:
    def test_with_nrh_returns_new_config(self):
        config = baseline_config(nrh=500)
        other = config.with_nrh(1000)
        assert other.rowhammer.nrh == 1000
        assert config.rowhammer.nrh == 500

    def test_with_mitigation(self):
        config = baseline_config().with_mitigation(MitigationCommand.DRFM_SB, 2)
        assert config.rowhammer.mitigation_command is MitigationCommand.DRFM_SB
        assert config.rowhammer.blast_radius == 2

    def test_with_mitigation_keeps_blast_radius_when_omitted(self):
        config = baseline_config().with_mitigation(MitigationCommand.RFM_SB)
        assert config.rowhammer.blast_radius == 1

    def test_with_refresh_window_scale(self):
        config = baseline_config().with_refresh_window_scale(0.25)
        assert config.timings.trefw_ns == 8_000_000.0

    def test_with_llc_size(self):
        config = baseline_config().with_llc_size(4 * 1024 * 1024)
        assert config.llc.size_bytes == 4 * 1024 * 1024

    def test_cache_sets(self):
        assert CacheConfig().num_sets == 8192


class TestPresets:
    def test_baseline_config_nrh(self):
        assert baseline_config(nrh=250).rowhammer.nrh == 250

    def test_large_system_has_eight_channels(self):
        config = large_system_config(per_core_llc_mb=3)
        assert config.dram.channels == 8
        assert config.llc.size_bytes == 3 * 1024 * 1024 * 4

    def test_reduced_row_config_shrinks_rows(self):
        config = reduced_row_config(rows_per_bank=4096)
        assert config.dram.rows_per_bank == 4096
        assert config.dram.rank_row_bits == 17
