"""Engine parity suite: the batched engine must be bit-identical everywhere.

The batched engine (:mod:`repro.sim.batch`) restructures the per-request hot
path but must produce byte-for-byte the same :class:`SimulationResult` as the
scalar reference engine, for every registered tracker, for multi-attacker
core plans, across worker-pool execution, and through a warehouse replay.
These tests are the contract that lets ``bench_sweep`` advertise its speedup
as a pure optimisation.
"""

import json

import pytest

import repro.core.dapper_h as dapper_h_mod
import repro.sim.batch as batch_mod
from repro.config import reduced_row_config
from repro.core.rgc import RowGroupCounterTable
from repro.sim.experiment import run_workload
from repro.sim.sweep import CoreAssignment, ScenarioSpec, SweepRunner
from repro.trackers.registry import available_trackers


REQUESTS = 400
ATTACK_WARMUP = 20_000
LLC_WARMUP = 5_000


def _canon(result) -> dict:
    """Serialized result, round-tripped the way the warehouse stores it."""
    return json.loads(json.dumps(result.to_dict(), sort_keys=True, default=str))


def _run(tracker: str, engine: str, attack="refresh", core_plan=None):
    return _canon(
        run_workload(
            config=reduced_row_config(nrh=500),
            tracker=tracker,
            workload="453.povray",
            attack=attack,
            requests_per_core=REQUESTS,
            attack_warmup_activations=ATTACK_WARMUP,
            llc_warmup_accesses=LLC_WARMUP,
            core_plan=core_plan,
            engine=engine,
        )
    )


class TestEngineParity:
    @pytest.mark.parametrize("tracker", available_trackers())
    def test_batched_matches_scalar(self, tracker):
        assert _run(tracker, "batched") == _run(tracker, "scalar")

    @pytest.mark.parametrize("tracker", ["none", "graphene"])
    def test_benign_scenarios_match(self, tracker):
        assert _run(tracker, "batched", attack=None) == _run(
            tracker, "scalar", attack=None
        )

    def test_multi_attacker_plan_matches(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="attack", name="refresh", hammer_rate=0.5),
            CoreAssignment(role="workload", name="453.povray"),
            CoreAssignment(role="workload", name="429.mcf", intensity=0.5),
        )
        assert _run("dapper-h", "batched", attack=None, core_plan=plan) == _run(
            "dapper-h", "scalar", attack=None, core_plan=plan
        )


class TestExecutionModeParity:
    def _specs(self):
        return [
            ScenarioSpec(
                tracker=tracker,
                workload="453.povray",
                attack="refresh",
                requests_per_core=REQUESTS,
                attack_warmup_activations=ATTACK_WARMUP,
                llc_warmup_accesses=LLC_WARMUP,
                config=reduced_row_config(nrh=500),
            )
            for tracker in ("none", "graphene", "dapper-h")
        ]

    def test_pool_matches_serial(self):
        serial = SweepRunner().run(self._specs())
        pooled = SweepRunner(jobs=2).run(self._specs())
        for a, b in zip(serial, pooled):
            assert _canon(a.result) == _canon(b.result)

    def test_warehouse_replay_matches_fresh(self, tmp_path):
        store = tmp_path / "warehouse"
        first = SweepRunner(cache_dir=store).run(self._specs())
        replayed = SweepRunner(cache_dir=store).run(self._specs())
        fresh = SweepRunner().run(self._specs())
        for a, b, c in zip(first, replayed, fresh):
            assert _canon(a.result) == _canon(b.result) == _canon(c.result)


class TestPurePythonFallbackParity:
    def test_dapper_h_without_numpy_matches(self, monkeypatch):
        reference = _run("dapper-h", "batched")
        monkeypatch.setattr(dapper_h_mod, "_np", None)
        monkeypatch.setattr(batch_mod, "_np", None)
        original_init = RowGroupCounterTable.__init__

        def pure_init(self, *args, **kwargs):
            kwargs["use_numpy"] = False
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(RowGroupCounterTable, "__init__", pure_init)
        assert _run("dapper-h", "scalar") == reference
        assert _run("dapper-h", "batched") == reference
