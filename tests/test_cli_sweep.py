"""Tests for the ``sweep`` CLI subcommand: argument parsing, parallel jobs,
the JSON report schema, cache behaviour across invocations, and exit codes."""

from __future__ import annotations

import json

from repro.cli import main

WORKLOAD = "453.povray"
FAST_ARGS = ["--requests", "300", "--nrh", "500"]


def _sweep(tmp_path, *extra: str) -> tuple[int, dict]:
    report_path = tmp_path / "report.json"
    code = main(
        [
            "sweep",
            "--workloads", WORKLOAD,
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(report_path),
            *FAST_ARGS,
            *extra,
        ]
    )
    report = (
        json.loads(report_path.read_text(encoding="utf-8"))
        if report_path.exists()
        else {}
    )
    return code, report


class TestReportSchema:
    def test_report_written_with_expected_schema(self, tmp_path, capsys):
        code, report = _sweep(tmp_path, "--trackers", "none,dapper-h")
        assert code == 0
        assert set(report) == {"config", "scenarios", "summary"}
        assert len(report["scenarios"]) == 2
        for scenario in report["scenarios"]:
            assert scenario["workload"] == WORKLOAD
            assert scenario["attack"] is None
            assert 0.0 < scenario["normalized_performance"] <= 1.5
            assert isinstance(scenario["from_cache"], bool)
            assert len(scenario["cache_key"]) == 64       # sha256 hex
        summary = report["summary"]
        assert summary["scenarios"] == 2
        assert summary["cache_hits"] + summary["cache_misses"] == summary["simulations"]
        assert summary["jobs"] == 1
        out = capsys.readouterr().out
        assert "cache hits" in out

    def test_attack_cross_product(self, tmp_path):
        code, report = _sweep(
            tmp_path,
            "--trackers", "none",
            "--attacks", "none,cache-thrashing",
        )
        assert code == 0
        attacks = [scenario["attack"] for scenario in report["scenarios"]]
        assert attacks == [None, "cache-thrashing"]

    def test_report_to_stdout(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--trackers", "none",
                "--workloads", WORKLOAD,
                "--cache-dir", str(tmp_path / "cache"),
                "-o", "-",
                *FAST_ARGS,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        report = json.loads(out[: out.rindex("}") + 1])
        assert report["summary"]["scenarios"] == 1


class TestJobsAndCache:
    def test_parallel_jobs_match_serial(self, tmp_path):
        code_serial, serial = _sweep(
            tmp_path / "serial", "--trackers", "none,dapper-h", "--jobs", "1"
        )
        code_parallel, parallel = _sweep(
            tmp_path / "parallel", "--trackers", "none,dapper-h", "--jobs", "2"
        )
        assert code_serial == code_parallel == 0
        assert [s["normalized_performance"] for s in serial["scenarios"]] == [
            s["normalized_performance"] for s in parallel["scenarios"]
        ]

    def test_second_invocation_is_served_from_cache(self, tmp_path):
        _sweep(tmp_path, "--trackers", "none,dapper-h")
        code, report = _sweep(tmp_path, "--trackers", "none,dapper-h")
        assert code == 0
        summary = report["summary"]
        assert summary["cache_hit_rate"] >= 0.9
        assert all(s["from_cache"] for s in report["scenarios"])


class TestExitCodes:
    def test_unknown_tracker_exits_2(self, tmp_path, capsys):
        code, _ = _sweep(tmp_path, "--trackers", "definitely-not-a-tracker")
        assert code == 2
        assert "unknown tracker" in capsys.readouterr().err

    def test_unknown_attack_exits_2(self, tmp_path, capsys):
        code, _ = _sweep(tmp_path, "--trackers", "none", "--attacks", "nope")
        assert code == 2
        assert "unknown attack" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        code = main(["sweep", "--workloads", "not-a-workload", *FAST_ARGS])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_empty_tracker_list_exits_2(self, tmp_path, capsys):
        code, _ = _sweep(tmp_path, "--trackers", ",")
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_breakhammer_composition_is_accepted(self, tmp_path):
        code, report = _sweep(tmp_path, "--trackers", "breakhammer:dapper-h")
        assert code == 0
        assert report["scenarios"][0]["tracker"] == "breakhammer:dapper-h"
