"""Event-engine parity suite: the discrete-event engine is bit-identical.

The event engine (:mod:`repro.sim.events.engine`) replaces the scalar
scheduler heap with a typed event queue and adds a vectorized quiescent
stretch executor, but must produce byte-for-byte the same
:class:`SimulationResult` as the scalar reference engine -- for every
registered tracker, for multi-attacker core plans, for trace replay, with
and without numpy, and with event-bus subscribers attached.  These tests
hold the event engine to the exact bar ``tests/test_batch_parity.py`` sets
for the batched engine.
"""

import json
import random

import pytest

import repro.core.dapper_h as dapper_h_mod
import repro.sim.batch as batch_mod
from repro.config import reduced_row_config
from repro.core.rgc import RowGroupCounterTable
from repro.cpu.trace import TraceEntry
from repro.cpu.tracefile import (
    FileTraceGenerator,
    read_trace,
    record_workload_trace,
    write_trace,
)
from repro.scenarios import family_by_name
from repro.sim.experiment import run_workload
from repro.sim.sweep import CoreAssignment
from repro.trackers.registry import available_trackers


REQUESTS = 400
ATTACK_WARMUP = 20_000
LLC_WARMUP = 5_000


def _canon(result) -> dict:
    """Serialized result, round-tripped the way the warehouse stores it."""
    return json.loads(json.dumps(result.to_dict(), sort_keys=True, default=str))


def _run(
    tracker: str,
    engine: str,
    attack="refresh",
    core_plan=None,
    requests=REQUESTS,
):
    return _canon(
        run_workload(
            config=reduced_row_config(nrh=500),
            tracker=tracker,
            workload="453.povray",
            attack=attack,
            requests_per_core=requests,
            attack_warmup_activations=ATTACK_WARMUP,
            llc_warmup_accesses=LLC_WARMUP,
            core_plan=core_plan,
            engine=engine,
        )
    )


def _run_spec(spec, engine):
    return _canon(
        run_workload(
            config=spec.config,
            tracker=spec.tracker,
            workload=spec.workload,
            attack=spec.attack,
            requests_per_core=spec.requests_per_core,
            seed=spec.seed,
            attack_warmup_activations=spec.attack_warmup_activations,
            llc_warmup_accesses=spec.llc_warmup_accesses,
            core_plan=spec.core_plan,
            engine=engine,
        )
    )


class TestEngineParity:
    @pytest.mark.parametrize("tracker", available_trackers())
    def test_event_matches_scalar(self, tracker):
        assert _run(tracker, "event") == _run(tracker, "scalar")

    @pytest.mark.parametrize("tracker", ["none", "graphene"])
    def test_benign_scenarios_match(self, tracker):
        assert _run(tracker, "event", attack=None) == _run(
            tracker, "scalar", attack=None
        )

    def test_multi_attacker_plan_matches(self):
        plan = (
            CoreAssignment(role="attack", name="refresh"),
            CoreAssignment(role="attack", name="refresh", hammer_rate=0.5),
            CoreAssignment(role="workload", name="453.povray"),
            CoreAssignment(role="workload", name="429.mcf", intensity=0.5),
        )
        assert _run("dapper-h", "event", attack=None, core_plan=plan) == _run(
            "dapper-h", "scalar", attack=None, core_plan=plan
        )


class TestQuiescentFastPath:
    """Scenarios whose queue goes quiescent engage the stretch executor.

    A single budgeted core next to idle cores empties the event queue on the
    first pop, so these runs spend nearly all their requests on the bitmap /
    vector-mode paths -- exactly the code the plain parity runs above only
    touch in their final stretch.
    """

    def test_single_budgeted_workload_core_matches(self):
        plan = (
            CoreAssignment(role="workload", name="453.povray"),
            CoreAssignment(role="idle"),
            CoreAssignment(role="idle"),
            CoreAssignment(role="idle"),
        )
        assert _run(
            "graphene", "event", attack=None, core_plan=plan, requests=5_000
        ) == _run(
            "graphene", "scalar", attack=None, core_plan=plan, requests=5_000
        )

    def test_hot_set_trace_vector_mode_matches(self, tmp_path):
        # A small hot set with gaps far above the LLC hit latency drives the
        # whole-run vector mode (accumulated issue times, batched LRU
        # updates, heap-tail reconstruction) for essentially every request.
        rng = random.Random(7)
        entries = [
            TraceEntry(
                gap_instructions=rng.randint(2_500, 7_500),
                address=(1 << 20) + 64 * rng.randrange(256),
                is_write=rng.random() < 0.25,
            )
            for _ in range(4_096)
        ]
        path = tmp_path / "hot.trace"
        write_trace(path, entries)
        plan = (
            CoreAssignment(role="trace", trace=str(path)),
            CoreAssignment(role="idle"),
            CoreAssignment(role="idle"),
            CoreAssignment(role="idle"),
        )
        assert _run(
            "graphene", "event", attack=None, core_plan=plan, requests=20_000
        ) == _run(
            "graphene", "scalar", attack=None, core_plan=plan, requests=20_000
        )


class TestTraceReplayParity:
    def _write_povray_trace(self, tmp_path, entries=2_000):
        recorded = record_workload_trace(
            "453.povray", entries, config=reduced_row_config(nrh=500)
        )
        path = tmp_path / "povray.trace"
        write_trace(path, recorded, header="453.povray excerpt")
        return path, recorded

    def test_trace_file_round_trips(self, tmp_path):
        path, recorded = self._write_povray_trace(tmp_path)
        assert read_trace(path) == recorded

    def test_batch_and_snapshot_replay_identically(self, tmp_path):
        path, recorded = self._write_povray_trace(tmp_path, entries=300)
        one_by_one = FileTraceGenerator(path)
        batched = FileTraceGenerator(path)
        first = [one_by_one.next_entry() for _ in range(450)]
        gaps, addresses, writes = batched.next_batch(450)
        assert [e.gap_instructions for e in first] == gaps
        assert [e.address for e in first] == addresses
        assert [e.is_write for e in first] == writes
        # A snapshot taken mid-replay restores the exact stream position.
        state = batched.state_snapshot()
        tail = batched.next_batch(100)
        batched.state_restore(state)
        assert batched.next_batch(100) == tail

    def test_trace_replay_family_matches_across_engines(self, tmp_path):
        path, _ = self._write_povray_trace(tmp_path)
        specs = family_by_name("trace-replay").expand(
            {
                "tracker": "graphene",
                "trace": str(path),
                "attack": "refresh",
                "nrh": 500,
                "geometry": "reduced",
            }
        )
        assert len(specs) == 1
        scalar = _run_spec(specs[0], "scalar")
        assert _run_spec(specs[0], "event") == scalar
        assert _run_spec(specs[0], "batched") == scalar


class TestPurePythonFallbackParity:
    def test_event_engine_without_numpy_matches(self, monkeypatch):
        reference = _run("dapper-h", "event")
        monkeypatch.setattr(dapper_h_mod, "_np", None)
        monkeypatch.setattr(batch_mod, "_np", None)
        original_init = RowGroupCounterTable.__init__

        def pure_init(self, *args, **kwargs):
            kwargs["use_numpy"] = False
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(RowGroupCounterTable, "__init__", pure_init)
        assert _run("dapper-h", "scalar") == reference
        assert _run("dapper-h", "event") == reference


class TestEventBusObservation:
    """Subscribers observe the run without perturbing it."""

    def _spec(self):
        return family_by_name("multi-refresh-window").expand(
            {
                "tracker": "graphene",
                "workload": "453.povray",
                "windows": 2,
                "trefw_scale": 1.0 / 256.0,
                "geometry": "reduced",
                "nrh": 500,
            }
        )[0]

    def test_subscribers_preserve_results_and_count_consistently(self):
        from repro.sim.events.engine import EventDrivenSimulator
        from repro.sim.events.events import (
            BankActivate,
            RefreshTick,
            RefreshWindow,
            ServiceComplete,
            TrackerEpoch,
        )
        from repro.sim.experiment import build_core_specs, _resolve_workload
        from repro.trackers.registry import create_tracker

        spec = self._spec()
        reference = _run_spec(spec, "scalar")

        config = spec.config
        core_specs = build_core_specs(
            config,
            _resolve_workload(spec.workload),
            spec.attack,
            spec.requests_per_core,
            spec.resolved_seed(),
        )
        simulator = EventDrivenSimulator(
            config,
            create_tracker(spec.tracker, config),
            core_specs,
            llc_warmup_accesses=spec.llc_warmup_accesses,
        )
        counts: dict[type, int] = {}
        for kind in (
            ServiceComplete,
            BankActivate,
            RefreshTick,
            RefreshWindow,
            TrackerEpoch,
        ):
            def _count(event, _kind=kind):
                counts[_kind] = counts.get(_kind, 0) + 1

            simulator.events.subscribe(kind, _count)
        observed = _canon(simulator.run())

        # Observation is free of side effects on the simulation itself.
        assert observed == reference

        stats = observed["controller_stats"]
        assert counts[ServiceComplete] == stats["requests"]
        assert counts[RefreshWindow] == stats["refresh_windows"] >= 2
        assert counts[TrackerEpoch] == counts[RefreshWindow]
        assert counts[BankActivate] > 0
        assert counts[RefreshTick] > 0

    def test_unsubscribed_bus_emits_nothing(self):
        from repro.sim.events.events import EventBus, RefreshWindow

        bus = EventBus()
        assert not bus.has_subscribers
        assert not bus.wants(RefreshWindow)
        seen = []
        handler = seen.append
        bus.subscribe(RefreshWindow, handler)
        bus.emit(RefreshWindow(0.0, 1))
        bus.unsubscribe(RefreshWindow, handler)
        bus.emit(RefreshWindow(1.0, 2))
        assert len(seen) == 1
        assert not bus.has_subscribers
