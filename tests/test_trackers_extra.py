"""Unit tests for the extra baselines: Graphene, MINT and the BreakHammer shim."""

import pytest

from repro.config import baseline_config
from repro.dram.address import BankAddress, RowAddress
from repro.trackers.graphene import GrapheneTracker, graphene_entries_per_bank
from repro.trackers.mint import MintTracker
from repro.trackers.none import NoMitigation
from repro.trackers.registry import available_trackers, create_tracker
from repro.trackers.throttling import BreakHammerShim


def _row(row=1000, bank=0, bank_group=0, rank=0, channel=0):
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


@pytest.fixture
def config():
    return baseline_config(nrh=500)


class TestGraphene:
    def test_entry_sizing_scales_inversely_with_nrh(self):
        entries_500 = graphene_entries_per_bank(500, 32_000_000.0, 48.0)
        entries_1000 = graphene_entries_per_bank(1000, 32_000_000.0, 48.0)
        assert entries_500 > entries_1000
        # tREFW/tRC activations divided by NRH/4.
        assert entries_500 == pytest.approx(32_000_000 / 48 / 125, rel=0.01)

    def test_no_counter_dram_traffic(self, config):
        tracker = GrapheneTracker(config)
        for i in range(5_000):
            response = tracker.on_activation(_row(row=i % 97), 0.0)
            assert response.counter_reads == 0
            assert response.counter_writes == 0
            assert not response.blackouts

    def test_mitigates_hammered_row_at_threshold(self, config):
        tracker = GrapheneTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        mitigated_at = None
        for i in range(1, threshold + 2):
            response = tracker.on_activation(_row(row=42), 0.0)
            if response.mitigations:
                mitigated_at = i
                assert response.mitigations[0].row == 42
                break
        assert mitigated_at is not None
        assert mitigated_at <= threshold + 1

    def test_streaming_never_mitigates(self, config):
        tracker = GrapheneTracker(config)
        for i in range(20_000):
            response = tracker.on_activation(_row(row=i % 4096, bank=i % 4), 0.0)
            assert not response.mitigations

    def test_per_bank_isolation(self, config):
        tracker = GrapheneTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        # Hammering the same row id in two banks must not mix the counts.
        for _ in range(threshold - 1):
            tracker.on_activation(_row(row=7, bank=0), 0.0)
        response = tracker.on_activation(_row(row=7, bank=1), 0.0)
        assert not response.mitigations

    def test_refresh_window_clears_state(self, config):
        tracker = GrapheneTracker(config)
        threshold = config.rowhammer.mitigation_threshold
        for _ in range(threshold - 1):
            tracker.on_activation(_row(row=9), 0.0)
        tracker.on_refresh_window(1, 0.0)
        response = tracker.on_activation(_row(row=9), 0.0)
        assert not response.mitigations
        assert tracker.stats.periodic_resets == 1

    def test_storage_is_impractically_large(self, config):
        """The whole point of Graphene as a baseline: precise but expensive."""
        report = GrapheneTracker(config).storage_report()
        dapper_h = create_tracker("dapper-h", config).storage_report()
        assert report.cam_kb > 0
        assert report.sram_kb + report.cam_kb > 4 * (dapper_h.sram_kb + dapper_h.cam_kb)

    def test_storage_grows_as_nrh_drops(self):
        low = GrapheneTracker(baseline_config(nrh=125)).storage_report()
        high = GrapheneTracker(baseline_config(nrh=1000)).storage_report()
        assert low.cam_bytes > high.cam_bytes


class TestMint:
    def test_paced_mitigation_rate(self, config):
        tracker = MintTracker(config)
        mitigations = 0
        activations = 10_000
        for i in range(activations):
            response = tracker.on_activation(_row(row=i % 64), 0.0)
            mitigations += len(response.mitigations)
        expected = activations // tracker.activations_per_mitigation
        assert mitigations == expected

    def test_mitigated_row_was_activated_in_window(self, config):
        tracker = MintTracker(config)
        window_rows: list[int] = []
        for i in range(tracker.activations_per_mitigation * 3):
            row = 100 + (i % 37)
            window_rows.append(row)
            response = tracker.on_activation(_row(row=row), 0.0)
            if response.mitigations:
                assert response.mitigations[0].row in window_rows
                window_rows.clear()

    def test_hammered_row_selected_with_high_probability(self, config):
        """If one row dominates the window it dominates the reservoir too."""
        tracker = MintTracker(config)
        hits = 0
        total = 0
        for i in range(tracker.activations_per_mitigation * 200):
            row = 7 if i % 8 else 1000 + i   # 7/8 of activations hammer row 7
            response = tracker.on_activation(_row(row=row), 0.0)
            for target in response.mitigations:
                total += 1
                hits += target.row == 7
        assert total > 0
        assert hits / total > 0.6

    def test_per_bank_windows_are_independent(self, config):
        tracker = MintTracker(config)
        pace = tracker.activations_per_mitigation
        for _ in range(pace - 1):
            assert not tracker.on_activation(_row(row=1, bank=0), 0.0).mitigations
        # A different bank has its own window, far from its pace boundary.
        assert not tracker.on_activation(_row(row=1, bank=1), 0.0).mitigations
        # The original bank's next activation completes its window.
        assert tracker.on_activation(_row(row=1, bank=0), 0.0).mitigations

    def test_refresh_window_resets_reservoirs(self, config):
        tracker = MintTracker(config)
        for _ in range(tracker.activations_per_mitigation - 1):
            tracker.on_activation(_row(row=3), 0.0)
        tracker.on_refresh_window(1, 0.0)
        response = tracker.on_activation(_row(row=3), 0.0)
        assert not response.mitigations

    def test_storage_is_tiny(self, config):
        report = MintTracker(config).storage_report()
        assert report.sram_kb < 1.0
        assert report.cam_bytes == 0


class TestBreakHammerShim:
    def _hammer(self, shim, core_id, rows, repeats, bank=0):
        shim.note_request_source(core_id)
        for _ in range(repeats):
            for row in rows:
                shim.on_activation(_row(row=row, bank=bank), 0.0)

    def test_delegates_mitigations_unchanged(self, config):
        inner = create_tracker("graphene", config)
        shim = BreakHammerShim(config, inner)
        threshold = config.rowhammer.mitigation_threshold
        shim.note_request_source(0)
        responses = [
            shim.on_activation(_row(row=5), 0.0) for _ in range(threshold + 1)
        ]
        assert any(r.mitigations for r in responses)
        assert inner.stats.mitigations_issued >= 1

    def test_attributes_triggers_to_requesting_core(self, config):
        shim = BreakHammerShim(config, create_tracker("graphene", config))
        threshold = config.rowhammer.mitigation_threshold
        self._hammer(shim, core_id=0, rows=[11], repeats=threshold + 1)
        self._hammer(shim, core_id=1, rows=[2000 + i for i in range(50)], repeats=1)
        assert shim.trigger_count(0) >= 1
        assert shim.trigger_count(1) == 0

    def test_attacker_becomes_suspect_and_is_rate_limited(self, config):
        shim = BreakHammerShim(config, create_tracker("graphene", config))
        threshold = config.rowhammer.mitigation_threshold
        # A benign core that never triggers mitigations.
        self._hammer(shim, core_id=1, rows=list(range(100, 200)), repeats=2)
        # An attacker hammering enough distinct rows to trigger many mitigations.
        for row in range(16):
            self._hammer(shim, core_id=0, rows=[row], repeats=threshold + 1)
        assert shim.is_suspect(0)
        assert not shim.is_suspect(1)
        # A suspect core receiving back-to-back completions is spaced apart:
        # the first response passes, later ones in the same instant are delayed.
        shim.note_request_source(0)
        shim.completion_delay_ns(_row(row=1), 0.0)
        assert shim.completion_delay_ns(_row(row=1), 0.0) >= shim.MIN_SPACING_NS
        # Benign cores are never delayed, before or after the access.
        shim.note_request_source(1)
        assert shim.throttle_delay_ns(_row(row=1), 0.0) == 0.0
        assert shim.completion_delay_ns(_row(row=1), 0.0) == 0.0

    def test_rate_limit_spaces_a_suspect_cores_responses(self, config):
        shim = BreakHammerShim(config, create_tracker("graphene", config))
        threshold = config.rowhammer.mitigation_threshold
        shim.note_request_source(1)
        shim.on_activation(_row(row=500), 0.0)
        for row in range(16):
            self._hammer(shim, core_id=0, rows=[row], repeats=threshold + 1)
        assert shim.is_suspect(0)
        shim.note_request_source(0)
        # Ten completions at the same instant end up spaced MIN_SPACING_NS
        # apart, i.e. the cumulative delay grows linearly.
        delays = [shim.completion_delay_ns(_row(row=1), 1000.0) for _ in range(10)]
        assert delays[0] == 0.0
        for index in range(1, 10):
            assert delays[index] >= index * shim.MIN_SPACING_NS - 1e-9
        assert shim.stats.throttled_requests == 9

    def test_scores_decay_across_refresh_windows(self, config):
        shim = BreakHammerShim(config, create_tracker("graphene", config))
        threshold = config.rowhammer.mitigation_threshold
        for row in range(16):
            self._hammer(shim, core_id=0, rows=[row], repeats=threshold + 1)
        before = shim.trigger_count(0)
        shim.on_refresh_window(1, 0.0)
        assert shim.trigger_count(0) == before // 2
        for _ in range(20):
            shim.on_refresh_window(2, 0.0)
        assert shim.trigger_count(0) == 0
        assert not shim.is_suspect(0)

    def test_storage_adds_only_score_counters(self, config):
        inner = create_tracker("dapper-h", config)
        shim = BreakHammerShim(config, create_tracker("dapper-h", config))
        extra = shim.storage_report().sram_bytes - inner.storage_report().sram_bytes
        assert 0 < extra <= 4 * config.cores.num_cores

    def test_composition_with_the_none_tracker_never_throttles(self, config):
        shim = BreakHammerShim(config, NoMitigation(config))
        self._hammer(shim, core_id=0, rows=[1], repeats=5_000)
        assert not shim.is_suspect(0)
        assert shim.throttle_delay_ns(_row(row=1), 0.0) == 0.0


class TestRegistryComposition:
    def test_new_trackers_are_registered(self):
        names = available_trackers()
        assert "graphene" in names
        assert "mint" in names

    def test_breakhammer_prefix_composes(self, config):
        tracker = create_tracker("breakhammer:dapper-h", config)
        assert isinstance(tracker, BreakHammerShim)
        assert tracker.inner.name == "dapper-h"
        assert tracker.name == "breakhammer(dapper-h)"

    def test_breakhammer_prefix_rejects_unknown_inner(self, config):
        with pytest.raises(ValueError):
            create_tracker("breakhammer:not-a-tracker", config)

    def test_every_registered_tracker_instantiates_and_reports_storage(self, config):
        for name in available_trackers():
            tracker = create_tracker(name, config)
            report = tracker.storage_report()
            assert report.sram_bytes >= 0
            assert report.cam_bytes >= 0
